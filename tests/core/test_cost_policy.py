"""Tests for the cost-aware selection policy extension."""

import pytest

from repro.core import ORB
from repro.core.capabilities import CallQuotaCapability, EncryptionCapability
from repro.core.cost_policy import CostAwarePolicy
from repro.exceptions import NoApplicableProtocolError
from repro.simnet import NetworkSimulator, paper_testbed

from tests.core.conftest import Counter


@pytest.fixture
def world():
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    remote = orb.context("remote", machine=tb.m1)
    local = orb.context("local", machine=tb.m0)
    yield orb, sim, client, remote, local
    orb.shutdown()


class TestPrediction:
    def test_shm_cheapest_on_same_machine(self, world):
        _orb, _sim, client, _remote, local = world
        oref = local.export(Counter())
        gp = client.bind(oref, policy=CostAwarePolicy(client))
        assert gp.selected_proto_id == "shm"

    def test_predicts_higher_cost_for_capability_stack(self, world):
        _orb, _sim, client, remote, _local = world
        oref = remote.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(100, applicability="always"),
             EncryptionCapability.server_descriptor(
                 key_seed=1, applicability="always")]])
        policy = CostAwarePolicy(client)
        glue_entry = oref.entry("glue")
        nexus_entry = oref.entry("nexus")
        assert policy.predict_cost(glue_entry) > \
            policy.predict_cost(nexus_entry)

    def test_recovers_from_adversarial_or_order(self, world):
        """First-match would pick the expensive glue entry listed first;
        the cost-aware policy picks plain nexus instead."""
        _orb, _sim, client, remote, _local = world
        oref = remote.export(Counter(), glue_stacks=[
            [EncryptionCapability.server_descriptor(
                key_seed=1, applicability="always")]])
        gp_first = client.bind(oref)
        gp_cost = client.bind(oref, policy=CostAwarePolicy(client))
        assert gp_first.selected_proto_id == "glue"
        assert gp_cost.selected_proto_id == "nexus"
        assert gp_cost.invoke("add", 1) == 1

    def test_matches_first_match_when_or_is_well_ordered(self, world):
        """For the paper's own table the two policies agree about the
        cheap same-machine case."""
        _orb, _sim, client, _remote, local = world
        oref = local.export(Counter())
        gp_first = client.bind(oref)
        gp_cost = client.bind(oref, policy=CostAwarePolicy(client))
        assert gp_first.selected_proto_id == gp_cost.selected_proto_id

    def test_respects_pool_and_applicability(self, world):
        _orb, _sim, client, remote, _local = world
        oref = remote.export(Counter())
        gp = client.bind(oref, policy=CostAwarePolicy(client))
        # shm inapplicable (different machines); ban nexus via the pool.
        gp.pool.disallow("nexus")
        with pytest.raises(NoApplicableProtocolError):
            gp.invoke("get")

    def test_reference_bytes_validation(self, world):
        _orb, _sim, client, _remote, _local = world
        with pytest.raises(ValueError):
            CostAwarePolicy(client, reference_bytes=0)

    def test_degrades_to_first_match_without_simulator(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter())
        gp = client.bind(oref, policy=CostAwarePolicy(client))
        assert gp.selected_proto_id == "shm"  # first applicable entry
        assert gp.invoke("add", 1) == 1

    def test_unknown_target_machine_degrades(self, world):
        _orb, _sim, client, remote, _local = world
        oref = remote.export(Counter())
        for entry in oref.protocols:
            entry.proto_data["machine"] = "not-a-machine"
            entry.proto_data["lan"] = "x"
            entry.proto_data["site"] = "y"
        gp = client.bind(oref, policy=CostAwarePolicy(client))
        # Prediction impossible -> first applicable candidate (nexus,
        # since shm is inapplicable for the unknown remote machine).
        assert gp.selected_proto_id == "nexus"


class TestEndToEndSavings:
    def test_cost_policy_saves_virtual_time(self, world):
        """Against the adversarial OR, the cost-aware client finishes the
        same request program in less virtual time."""
        import numpy as np

        _orb, sim, client, remote, _local = world
        payload = np.arange(1 << 16, dtype=np.uint8)

        def run(policy=None):
            oref = remote.export(Counter(), glue_stacks=[
                [EncryptionCapability.server_descriptor(
                    key_seed=2, applicability="always")]])
            gp = client.bind(oref, policy=policy)
            gp.invoke("echo", payload[:1])
            t0 = sim.clock.now()
            for _ in range(3):
                gp.invoke("echo", payload)
            return sim.clock.now() - t0

        slow = run()  # first-match picks the encrypting glue
        fast = run(CostAwarePolicy(client))
        assert fast < slow
