"""Custom proto-classes: the Open Implementation extension point.

§3.2: "custom protocols are supported by having users write their own
proto-classes that satisfy a standard interface."  These tests write one
and drive the ORB through it end to end.
"""

import pytest

from repro.core import ORB
from repro.core.objref import ProtocolEntry
from repro.core.protocol import (
    PROTO_CLASSES,
    NexusProtocol,
    ProtocolClass,
    ProtocolClient,
    get_proto_class,
    register_proto_class,
)
from repro.exceptions import ProtocolError, UnknownProtocolError

from tests.core.conftest import Counter


class CountingClient(ProtocolClient):
    """A proto-object that counts its invocations (otherwise nexus)."""

    invocations = 0

    def invoke(self, invocation):
        type(self).invocations += 1
        return super().invoke(invocation)


class TestRegistry:
    def test_builtin_protocols_registered(self):
        for pid in ("nexus", "shm", "glue"):
            assert pid in PROTO_CLASSES

    def test_unknown_proto_class(self):
        with pytest.raises(UnknownProtocolError):
            get_proto_class("carrier-pigeon")

    def test_missing_proto_id_rejected(self):
        class Nameless(ProtocolClass):
            pass

        with pytest.raises(ProtocolError):
            register_proto_class(Nameless)

    def test_duplicate_rejected(self):
        with pytest.raises(ProtocolError):
            register_proto_class(NexusProtocol)


@pytest.fixture
def custom_proto():
    """Register (and afterwards unregister) a custom protocol."""

    class AuditedProtocol(ProtocolClass):
        proto_id = "test-audited"
        default_applicability = "always"
        client_cls = CountingClient

    register_proto_class(AuditedProtocol, replace=True)
    CountingClient.invocations = 0
    yield AuditedProtocol
    PROTO_CLASSES.pop("test-audited", None)


class TestCustomProtocolEndToEnd:
    def test_custom_protocol_carries_requests(self, wall_pair,
                                              custom_proto):
        server, client = wall_pair
        oref = server.export(Counter())
        # Hand-install an entry for the custom protocol: same endpoint
        # addresses as nexus (it reuses the standard invoke handler).
        nexus_entry = oref.entry("nexus")
        oref.protocols.insert(0, ProtocolEntry(
            "test-audited", dict(nexus_entry.proto_data)))
        gp = client.bind(oref)
        gp.pool.allow("test-audited", prefer=True)
        assert gp.selected_proto_id == "test-audited"
        assert gp.invoke("add", 2) == 2
        assert gp.invoke("add", 3) == 5
        assert CountingClient.invocations == 2

    def test_custom_protocol_respects_pool(self, wall_pair, custom_proto):
        server, client = wall_pair
        oref = server.export(Counter())
        oref.protocols.insert(0, ProtocolEntry(
            "test-audited", dict(oref.entry("nexus").proto_data)))
        gp = client.bind(oref)
        # Not in the pool -> never chosen.
        assert gp.selected_proto_id != "test-audited"

    def test_custom_applicability(self, wall_pair, custom_proto):
        custom_proto.default_applicability = "different-machine"
        server, client = wall_pair  # same placement => same machine
        oref = server.export(Counter())
        oref.protocols.insert(0, ProtocolEntry(
            "test-audited", dict(oref.entry("nexus").proto_data)))
        gp = client.bind(oref)
        gp.pool.allow("test-audited", prefer=True)
        assert gp.selected_proto_id != "test-audited"

    def test_entry_level_applicability_override(self, wall_pair,
                                                custom_proto):
        server, client = wall_pair
        oref = server.export(Counter())
        data = dict(oref.entry("nexus").proto_data)
        data["applicability"] = "never"
        oref.protocols.insert(0, ProtocolEntry("test-audited", data))
        gp = client.bind(oref)
        gp.pool.allow("test-audited", prefer=True)
        assert gp.selected_proto_id != "test-audited"


class TestClientConnectionHandling:
    def test_no_reachable_address(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter())
        entry = oref.entry("nexus")
        entry.proto_data["addresses"] = [
            {"transport": "carrier-pigeon", "key": "x"}]
        gp = client.bind(oref)
        gp.pool.disallow("shm")
        with pytest.raises(ProtocolError):
            gp.invoke("get")

    def test_multimethod_fallback(self, wall_pair):
        """First address unreachable -> the client falls through to the
        next one (Nexus multimethod)."""
        server, client = wall_pair
        oref = server.export(Counter())
        entry = oref.entry("nexus")
        entry.proto_data["addresses"] = [
            {"transport": "inproc", "key": "no-such-endpoint"},
            *entry.proto_data["addresses"],
        ]
        gp = client.bind(oref)
        gp.pool.disallow("shm")
        assert gp.invoke("add", 1) == 1

    def test_reconnect_after_peer_restart(self, wall_orb):
        """A cached connection that dies is re-established on the next
        call (the call_raw retry path)."""
        server = wall_orb.context("s-restart")
        client = wall_orb.context("c-restart")
        oref = server.export(Counter(5))
        gp = client.bind(oref)
        assert gp.invoke("get") == 5
        # Kill every live server-side channel behind the GP's back.
        for ch in list(server.server.endpoint._channels):
            ch.close()
        assert gp.invoke("get") == 5
