"""Tests for the describe() diagnostic snapshots."""

import pytest

from repro.core import ORB
from repro.core.capabilities import CallQuotaCapability
from repro.core.migration import migrate
from repro.idl.interface import InterfaceView

from tests.core.conftest import Counter


class TestContextDescribe:
    def test_basic_shape(self, wall_pair):
        server, _client = wall_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(5)]])
        info = server.describe()
        assert info["context_id"] == server.id
        assert info["simulated"] is False
        assert "shm" in info["transports"]
        assert info["pool"] == ["glue", "shm", "nexus"]
        servant = info["servants"][oref.object_id]
        assert servant["interface"] == "Counter"
        assert "add" in servant["methods"]
        assert len(servant["glue_stacks"]) == 1
        glue_id = servant["glue_stacks"][0]
        assert info["glue_stacks"][glue_id] == ["quota"]

    def test_view_reflected(self, wall_pair):
        server, _client = wall_pair
        oref = server.export(Counter(),
                             view=InterfaceView("RO", ["get"]))
        info = server.describe()
        assert info["servants"][oref.object_id]["methods"] == ["get"]
        assert info["servants"][oref.object_id]["interface"] == "RO"

    def test_forwards_reported(self, wall_orb):
        from repro.core.context import Placement

        a = wall_orb.context("da", placement=Placement("ma", "la", "sa"))
        b = wall_orb.context("db", placement=Placement("mb", "lb", "sb"))
        oref = a.export(Counter())
        migrate(a, oref.object_id, b)
        assert a.describe()["forwards"] == {oref.object_id: "db"}
        assert oref.object_id in b.describe()["servants"]

    def test_load_counters(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        for _ in range(3):
            gp.invoke("add", 1)
        info = server.describe()
        assert info["load"]["total_requests"] == 3

    def test_marshallable(self, wall_pair):
        """Snapshots must survive the wire (remote ops tooling)."""
        from repro.serialization.marshal import dumps, loads

        server, _client = wall_pair
        server.export(Counter())
        assert loads(dumps(server.describe())) == server.describe()


class TestOrbDescribe:
    def test_wall_clock_orb(self, wall_pair):
        server, client = wall_pair
        orb = server.orb
        info = orb.describe()
        assert info["mode"] == "wall-clock"
        assert server.id in info["contexts"]
        assert "virtual_time" not in info

    def test_sim_orb(self, sim_world):
        orb, sim, _tb, contexts = sim_world
        gp = contexts["client"].bind(contexts["s1"].export(Counter()))
        gp.invoke("add", 1)
        info = orb.describe()
        assert info["mode"] == "sim"
        assert info["virtual_time"] == sim.clock.now()
        assert info["messages"] >= 2

    def test_names_listed(self, wall_pair):
        server, _client = wall_pair
        orb = server.orb
        orb.bind_name("thing", server.export(Counter()))
        assert orb.describe()["names"] == ["thing"]
