"""Integration tests for the glue protocol and capability stacks over a
running ORB (wall-clock world)."""

import pytest

from repro.core.capabilities import (
    AuthenticationCapability,
    CallQuotaCapability,
    CompressionCapability,
    EncryptionCapability,
    IntegrityCapability,
    TimeLeaseCapability,
)
from repro.core.context import Placement
from repro.exceptions import RemoteException
from repro.security.acl import AccessControlList
from repro.security.keys import Principal

from tests.core.conftest import Counter


@pytest.fixture
def remote_pair(wall_orb):
    """Client and server on different declared sites, so different-site
    and different-lan capabilities are applicable."""
    server = wall_orb.context("server", placement=Placement(
        machine="srv", lan="srv-lan", site="lab"))
    client = wall_orb.context("client", placement=Placement(
        machine="cli", lan="cli-lan", site="campus"))
    return server, client


class TestGlueSelectionAndPath:
    def test_glue_preferred_when_applicable(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(100)]])
        gp = client.bind(oref)
        assert gp.describe_selection() == "glue[quota]"
        assert gp.invoke("add", 2) == 2

    def test_glue_skipped_when_inapplicable(self, wall_pair):
        """Same machine: the quota capability (different-lan) doesn't
        apply, so the glue entry is passed over for shm."""
        server, client = wall_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(100)]])
        gp = client.bind(oref)
        assert gp.selected_proto_id == "shm"

    def test_stacked_capabilities(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[[
            CallQuotaCapability.for_calls(10),
            EncryptionCapability.server_descriptor(key_seed=5),
            IntegrityCapability.checksum(),
        ]])
        gp = client.bind(oref)
        assert gp.describe_selection() == "glue[quota+encryption+integrity]"
        for i in range(3):
            assert gp.invoke("add", 1) == i + 1

    def test_quota_exhaustion_via_rpc(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(2, applicability="always")]])
        gp = client.bind(oref)
        gp.pool.disallow("shm")
        gp.invoke("add", 1)
        gp.invoke("add", 1)
        from repro.exceptions import QuotaExceededError

        with pytest.raises(QuotaExceededError):
            gp.invoke("add", 1)

    def test_compression_stack(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CompressionCapability.with_codec("zlib",
                                              applicability="always")]])
        gp = client.bind(oref)
        big = "x" * 100_000
        assert gp.invoke("echo", big) == big

    def test_lease_expiry_via_rpc(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [TimeLeaseCapability.lasting(3600.0)]])
        gp = client.bind(oref)
        assert gp.invoke("add", 1) == 1

    def test_multiple_stacks_order(self, remote_pair):
        """Figure 4-B: multiple glue entries, most demanding first."""
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(5),
             EncryptionCapability.server_descriptor(key_seed=9)],
            [CallQuotaCapability.for_calls(5)],
        ])
        gp = client.bind(oref)
        assert gp.oref.proto_ids() == ["glue", "glue", "shm", "nexus"]
        assert gp.describe_selection() == "glue[quota+encryption]"

    def test_glue_reply_errors_propagate(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(100)]])
        gp = client.bind(oref)
        with pytest.raises(RemoteException) as err:
            gp.invoke("fail", "inside glue")
        assert err.value.remote_type == "RuntimeError"

    def test_unknown_glue_stack_is_loud(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(100)]])
        # Corrupt the glue id in the client's OR copy.
        oref.protocols[0].proto_data["glue_id"] = "ghost"
        gp = client.bind(oref)
        with pytest.raises(RemoteException) as err:
            gp.invoke("get")
        assert err.value.remote_type == "CapabilityError"


class TestAuthenticatedAccess:
    def setup_auth(self, server, client, principal="alice@lab"):
        alice = Principal.parse(principal)
        key = server.keystore.generate(alice)
        client.keystore.install(alice, key)
        return alice

    def test_authenticated_call(self, remote_pair):
        server, client = remote_pair
        alice = self.setup_auth(server, client)
        oref = server.export(Counter(), glue_stacks=[
            [AuthenticationCapability.for_principal(alice)]])
        gp = client.bind(oref)
        assert gp.describe_selection() == "glue[auth]"
        assert gp.invoke("add", 1) == 1

    def test_wrong_key_fails(self, remote_pair):
        server, client = remote_pair
        alice = Principal("alice", "lab")
        server.keystore.generate(alice)
        client.keystore.install(alice, b"wrong key entirely")
        oref = server.export(Counter(), glue_stacks=[
            [AuthenticationCapability.for_principal(alice)]])
        gp = client.bind(oref)
        from repro.exceptions import AuthenticationError, HpcError

        with pytest.raises((AuthenticationError, RemoteException,
                            HpcError)):
            gp.invoke("add", 1)

    def test_acl_restricts_authenticated_principal(self, remote_pair):
        server, client = remote_pair
        alice = self.setup_auth(server, client)
        acl = AccessControlList()
        acl.grant(alice, ["get"])
        oref = server.export(Counter(), acl=acl, glue_stacks=[
            [AuthenticationCapability.for_principal(alice)]])
        gp = client.bind(oref)
        assert gp.invoke("get") == 0
        with pytest.raises(RemoteException) as err:
            gp.invoke("add", 1)
        assert err.value.remote_type == "AuthenticationError"

    def test_acl_blocks_anonymous_path(self, remote_pair):
        """With an ACL and no auth capability, anonymous requests are
        refused (deny-by-default)."""
        server, client = remote_pair
        acl = AccessControlList()
        acl.grant(Principal("alice", "lab"), ["*"])
        oref = server.export(Counter(), acl=acl)
        gp = client.bind(oref)
        with pytest.raises(RemoteException) as err:
            gp.invoke("get")
        assert err.value.remote_type == "AuthenticationError"

    def test_auth_plus_encryption(self, remote_pair):
        server, client = remote_pair
        alice = self.setup_auth(server, client)
        oref = server.export(Counter(), glue_stacks=[[
            AuthenticationCapability.for_principal(alice),
            EncryptionCapability.server_descriptor(key_seed=13),
        ]])
        gp = client.bind(oref)
        for i in range(5):
            assert gp.invoke("add", 1) == i + 1


class TestDynamicCapabilities:
    def test_add_capability_stack_at_runtime(self, remote_pair):
        """§4: capabilities 'can be changed dynamically' — a client
        negotiates a new stack and prefers it."""
        server, client = remote_pair
        oref = server.export(Counter())
        gp = client.bind(oref)
        assert gp.selected_proto_id == "nexus"
        gp.add_capability_stack(
            [CallQuotaCapability.for_calls(10, applicability="always")])
        assert gp.describe_selection() == "glue[quota]"
        assert gp.invoke("add", 1) == 1

    def test_dynamic_stack_only_affects_this_gp(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter())
        gp1 = client.bind(oref)
        gp2 = client.bind(oref)
        gp1.add_capability_stack(
            [CallQuotaCapability.for_calls(10, applicability="always")])
        assert gp1.selected_proto_id == "glue"
        assert gp2.selected_proto_id == "nexus"

    def test_capability_exchange_between_processes(self, remote_pair):
        """Passing a capability-carrying OR to a third party: the new
        holder gets the same glue stack (quota shared server-side)."""
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(4, applicability="always")]])
        gp = client.bind(oref)
        gp.pool.disallow("shm")
        # Simulate handing the OR to another process via the wire.
        from repro.core.objref import ObjectReference

        transferred = ObjectReference.from_bytes(gp.dup().to_bytes())
        gp2 = client.bind(transferred)
        gp2.pool.disallow("shm")
        gp.invoke("add", 1)
        gp.invoke("add", 1)
        gp2.invoke("add", 1)
        gp2.invoke("add", 1)
        # Server-side quota counted all four; the fifth dies remotely.
        from repro.exceptions import QuotaExceededError

        with pytest.raises((QuotaExceededError, RemoteException)):
            gp2.invoke("add", 1)
