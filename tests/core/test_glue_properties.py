"""Property-based tests of the glue protocol's core invariant.

For ANY stack drawn from the capability registry and ANY payload, the
Figure 2 pipeline must be the identity:

    unprocess_reversed(process_in_order(payload)) == payload     (request)
    unprocess_reply_reversed(process_reply_in_order(reply)) == reply

with the correct meta threading (auth before encryption and vice versa,
etc.).  Hypothesis drives stacks of one to four capabilities in random
order with random payloads.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.capabilities import make_capability
from repro.core.capabilities.authentication import AuthenticationCapability
from repro.core.capabilities.encryption import EncryptionCapability
from repro.core.request import RequestMeta
from repro.security.keys import KeyStore, Principal
from repro.simnet.clock import VirtualClock


class FakeContext:
    def __init__(self):
        self.keystore = KeyStore(seed=99)
        self.clock = VirtualClock()
        self.sim = None
        self.machine = None

    def charge_cost(self, kind, nbytes):
        pass


def make_ctx_pair():
    client_ctx = FakeContext()
    server_ctx = FakeContext()
    principal = Principal("prop", "test")
    key = server_ctx.keystore.generate(principal)
    client_ctx.keystore.install(principal, key)
    client_ctx.keystore.install(Principal.parse("mac-key"), b"mackey")
    server_ctx.keystore.install(Principal.parse("mac-key"), b"mackey")
    return client_ctx, server_ctx


# Descriptor builders; each call yields a fresh, valid descriptor.
DESCRIPTOR_BUILDERS = {
    "quota": lambda: {"type": "quota", "max_calls": 10 ** 6},
    "lease": lambda: {"type": "lease", "expires_at": 10 ** 9},
    "tracing": lambda: {"type": "tracing"},
    "integrity": lambda: {"type": "integrity", "mode": "checksum"},
    "integrity-mac": lambda: {"type": "integrity", "mode": "mac",
                              "key_id": "mac-key"},
    "compression-rle": lambda: {"type": "compression", "codec": "rle",
                                "min_size": 16},
    "compression-zlib": lambda: {"type": "compression", "codec": "zlib",
                                 "min_size": 16},
    "padding": lambda: {"type": "padding", "quantum": 128},
    "auth": lambda: AuthenticationCapability.for_principal(
        Principal("prop", "test")),
    "encryption": lambda: EncryptionCapability.server_descriptor(
        key_seed=1234),
    "encryption-xtea": lambda: EncryptionCapability.server_descriptor(
        key_seed=99, cipher="xtea"),
}

stack_strategy = st.lists(
    st.sampled_from(sorted(DESCRIPTOR_BUILDERS)),
    min_size=1, max_size=4, unique=True)


def run_pipeline(stack_names, payload, reply_payload):
    client_ctx, server_ctx = make_ctx_pair()
    descriptors = [DESCRIPTOR_BUILDERS[name]() for name in stack_names]
    client_caps = [make_capability(d, client_ctx, "client")
                   for d in descriptors]
    server_caps = [make_capability(d, server_ctx, "server")
                   for d in descriptors]

    meta_c = RequestMeta()
    data = payload
    for cap in client_caps:
        data = cap.process(data, meta_c)

    meta_s = RequestMeta()
    for cap in reversed(server_caps):
        data = cap.unprocess(data, meta_s)
    received = data

    reply = reply_payload
    for cap in server_caps:
        reply = cap.process_reply(reply, meta_s)
    for cap in reversed(client_caps):
        reply = cap.unprocess_reply(reply, meta_c)
    return received, reply


class TestGluePipelineIdentity:
    @given(stack=stack_strategy, payload=st.binary(min_size=0, max_size=2000),
           reply=st.binary(min_size=0, max_size=2000))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_request_and_reply_identity(self, stack, payload, reply):
        received, reply_out = run_pipeline(stack, payload, reply)
        assert received == payload
        assert reply_out == reply

    @given(stack=stack_strategy)
    @settings(max_examples=20, deadline=None)
    def test_repeated_requests_through_one_stack(self, stack):
        """Stateful capabilities (counters, nonces) must keep the
        invariant across many messages through the same stack."""
        client_ctx, server_ctx = make_ctx_pair()
        descriptors = [DESCRIPTOR_BUILDERS[name]() for name in stack]
        client_caps = [make_capability(d, client_ctx, "client")
                       for d in descriptors]
        server_caps = [make_capability(d, server_ctx, "server")
                       for d in descriptors]
        for i in range(5):
            payload = bytes([i]) * (i * 100 + 1)
            meta_c, meta_s = RequestMeta(), RequestMeta()
            data = payload
            for cap in client_caps:
                data = cap.process(data, meta_c)
            for cap in reversed(server_caps):
                data = cap.unprocess(data, meta_s)
            assert data == payload

    @given(stack=st.lists(st.sampled_from(
        ["encryption", "integrity", "compression-zlib", "quota"]),
        min_size=2, max_size=4, unique=True),
        payload=st.binary(min_size=50, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_wire_differs_from_payload_when_transforming(self, stack,
                                                         payload):
        """Any stack containing encryption must hide the plaintext."""
        if "encryption" not in stack:
            stack = ["encryption", *stack]
        client_ctx, _ = make_ctx_pair()
        descriptors = [DESCRIPTOR_BUILDERS[name]() for name in stack]
        caps = [make_capability(d, client_ctx, "client")
                for d in descriptors]
        data = payload
        for cap in caps:
            data = cap.process(data, RequestMeta())
        assert payload not in data
