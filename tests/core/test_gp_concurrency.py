"""Thread-safety of the GP invoke path over real (wall-clock)
transports: the context-shared executor, close-drain semantics, table
mutation during in-flight traffic, and the drop_protocol client leak
regression."""

import threading
import time

import pytest

from repro.core.resilience import RetryBudgetRegistry, RetryPolicy
from repro.exceptions import HpcError
from repro.idl import remote_interface, remote_method

from tests.core.conftest import Counter


@remote_interface("Sleeper")
class Sleeper:
    """Servant whose calls take real wall time."""

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    @remote_method
    def nap(self, seconds: float) -> int:
        with self._lock:
            self.calls += 1
            n = self.calls
        time.sleep(seconds)
        return n


@remote_interface("SafeCounter")
class SafeCounter:
    """Idempotent-by-contract counter for mutation-under-load tests."""

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    @remote_method(retry_safe=True)
    def tick(self) -> int:
        with self._lock:
            self.calls += 1
            return self.calls


class TestSharedExecutor:
    def test_async_runs_on_the_context_pool(self, wall_pair):
        server, client = wall_pair
        gp1 = client.bind(server.export(Counter()))
        gp2 = client.bind(server.export(Counter()))
        assert not hasattr(gp1, "_executor")     # no per-GP pool anymore
        assert client._executor is None          # created lazily
        futures = [gp1.invoke_async("add", 1), gp2.invoke_async("add", 2)]
        assert [f.result(timeout=10) for f in futures] == [1, 2]
        assert client._executor is not None
        assert client._executor is client.executor  # one pool, reused

    def test_fanout_across_many_gps(self, wall_pair):
        server, client = wall_pair
        servant = SafeCounter()
        oref = server.export(servant)
        gps = [client.bind(oref) for _ in range(8)]
        futures = [gp.invoke_async("tick") for gp in gps for _ in range(8)]
        results = [f.result(timeout=10) for f in futures]
        assert sorted(results) == list(range(1, 65))
        assert servant.calls == 64

    def test_context_stop_shuts_the_pool_down(self, wall_orb):
        ctx = wall_orb.context("pooled")
        executor = ctx.executor
        ctx.stop()
        assert ctx._executor is None
        with pytest.raises(RuntimeError):
            executor.submit(lambda: None)        # shut down


class TestCloseSemantics:
    def test_close_drains_inflight_async_calls(self, wall_pair):
        server, client = wall_pair
        servant = Sleeper()
        gp = client.bind(server.export(servant))
        futures = [gp.invoke_async("nap", 0.2) for _ in range(4)]
        time.sleep(0.05)                         # let the workers start
        gp.close()                               # must drain, not orphan
        assert all(f.done() for f in futures)
        results = [f.result() for f in futures]
        assert sorted(results) == [1, 2, 3, 4]
        assert servant.calls == 4

    def test_post_close_invocations_raise_clearly(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.invoke("add", 1)
        gp.close()
        assert gp.closed
        with pytest.raises(HpcError, match="closed"):
            gp.invoke("get")
        with pytest.raises(HpcError, match="closed"):
            gp.invoke_async("get")
        with pytest.raises(HpcError, match="closed"):
            gp.invoke_oneway("bump")

    def test_close_is_idempotent(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.invoke("add", 1)
        gp.close()
        gp.close()                               # second close is a no-op
        assert gp._clients == {}

    def test_close_does_not_kill_the_context_pool(self, wall_pair):
        server, client = wall_pair
        gp1 = client.bind(server.export(Counter()))
        gp2 = client.bind(server.export(Counter()))
        gp1.invoke_async("add", 1).result(timeout=10)
        gp1.close()
        # Other GPs on the same context keep working: the pool is the
        # context's, not the closed GP's.
        assert gp2.invoke_async("add", 5).result(timeout=10) == 5


class TestDropProtocolEviction:
    def test_dropped_entries_release_their_clients(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        used = gp.selected_proto_id
        gp.invoke("add", 1)
        victims = [c for e, c in gp._clients.values()
                   if e.proto_id == used]
        assert victims                           # a client was cached
        closed = []
        for victim in victims:
            original = victim.close
            victim.close = lambda orig=original: (closed.append(1),
                                                  orig())[-1]
        gp.drop_protocol(used)
        assert len(closed) == len(victims)       # closed, not leaked
        assert all(e.proto_id != used
                   for e, _c in gp._clients.values())
        assert all(e.proto_id != used for e in gp.oref.protocols)
        # The remaining table still carries the call.
        assert gp.invoke("get") == 1
        assert gp.selected_proto_id != used

    def test_drop_without_cached_client_is_fine(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.drop_protocol("shm")                  # nothing ever dialed
        assert gp.invoke("add", 2) == 2


class TestMutationUnderLoad:
    def test_table_churn_during_fanout(self, wall_pair):
        """Regression for the unsynchronized oref swap: hammer
        update_reference/drop_protocol from one thread while async
        invocations stream from the pool.  Every call must complete;
        no snapshot may observe a half-mutated table."""
        server, client = wall_pair
        # Churn deliberately kills cached clients mid-call; give the
        # retries generous headroom so the test asserts *safety*, not
        # budget arithmetic.
        client.retry_budgets = RetryBudgetRegistry(max_tokens=10_000,
                                                   deposit_per_call=0)
        servant = SafeCounter()
        oref = server.export(servant)
        gp = client.bind(oref,
                         retry_policy=RetryPolicy(max_attempts=25,
                                                  base_backoff=0.001,
                                                  max_backoff=0.005))
        original = gp.dup()
        stop = threading.Event()
        churn_errors = []

        def churn():
            while not stop.is_set():
                try:
                    gp.drop_protocol("shm")
                    gp.update_reference(original)
                    time.sleep(0.0005)
                except Exception as exc:  # noqa: BLE001
                    churn_errors.append(exc)
                    return

        worker = threading.Thread(target=churn)
        worker.start()
        try:
            futures = [gp.invoke_async("tick") for _ in range(200)]
            results = [f.result(timeout=30) for f in futures]
        finally:
            stop.set()
            worker.join()
        assert churn_errors == []
        assert len(results) == 200
        assert servant.calls >= 200              # retries may re-execute
        assert max(results) == servant.calls
