"""Tests for the liveness monitor and its load-balancer integration."""

import pytest

from repro.core import ORB, LoadBalancer
from repro.core.health import HealthMonitor
from repro.exceptions import HpcError

from tests.core.conftest import Counter


@pytest.fixture
def trio(wall_orb):
    home = wall_orb.context("home")
    a = wall_orb.context("alpha")
    b = wall_orb.context("beta")
    return home, a, b


class TestProbing:
    def test_live_context_probes_alive(self, trio):
        home, a, _b = trio
        monitor = HealthMonitor(home)
        monitor.watch_context(a)
        result = monitor.probe("alpha")
        assert result.alive
        assert result.error is None
        assert result.rtt >= 0
        assert monitor.is_alive("alpha")

    def test_dead_context_probes_dead(self, trio):
        home, a, _b = trio
        home.call_timeout = 0.3
        monitor = HealthMonitor(home)
        monitor.watch_context(a)
        a.stop()
        result = monitor.probe("alpha")
        assert not result.alive
        assert result.error
        assert not monitor.is_alive("alpha")

    def test_sweep(self, trio):
        home, a, b = trio
        home.call_timeout = 0.3
        monitor = HealthMonitor(home)
        monitor.watch_context(a)
        monitor.watch_context(b)
        b.stop()
        verdicts = monitor.sweep()
        assert verdicts["alpha"].alive
        assert not verdicts["beta"].alive

    def test_unwatched_probe_rejected(self, trio):
        home, _a, _b = trio
        with pytest.raises(HpcError):
            HealthMonitor(home).probe("ghost")

    def test_unknown_defaults_alive(self, trio):
        home, _a, _b = trio
        assert HealthMonitor(home).is_alive("never-probed")

    def test_unwatch(self, trio):
        home, a, _b = trio
        monitor = HealthMonitor(home)
        monitor.watch_context(a)
        monitor.probe("alpha")
        monitor.unwatch("alpha")
        assert monitor.watched == []
        assert "alpha" not in monitor.last

    def test_mismatched_identity_is_dead(self, trio):
        """A ping answered by the *wrong* context (stale address reuse)
        counts as dead."""
        home, a, b = trio
        monitor = HealthMonitor(home)
        monitor.watch_context(a)
        # Point alpha's probe entry at beta's addresses.
        monitor._targets["alpha"] = monitor._targets["alpha"].clone()
        _shm, net = b._address_entries()
        monitor._targets["alpha"].proto_data["addresses"] = net
        result = monitor.probe("alpha")
        assert not result.alive
        assert "unexpected ping reply" in result.error


class TestBalancerIntegration:
    def test_dead_receiver_skipped(self, wall_orb):
        home = wall_orb.context("h2")
        hot = wall_orb.context("hot2")
        dead = wall_orb.context("dead2")
        home.call_timeout = 0.3
        oref = hot.export(Counter())
        hot.monitor.record_request(oref.object_id, 1.0)
        hot.monitor.busy_fraction.value = 0.95
        dead.monitor.busy_fraction.value = 0.05

        monitor = HealthMonitor(home)
        monitor.watch_context(dead)
        dead.stop()
        monitor.sweep()

        balancer = LoadBalancer([hot, dead], health=monitor)
        assert balancer.rebalance_once() == []
        assert oref.object_id in hot.servants

    def test_live_receiver_still_used(self, wall_orb):
        home = wall_orb.context("h3")
        hot = wall_orb.context("hot3")
        cold = wall_orb.context("cold3")
        oref = hot.export(Counter())
        hot.monitor.record_request(oref.object_id, 1.0)
        hot.monitor.busy_fraction.value = 0.95
        cold.monitor.busy_fraction.value = 0.05
        monitor = HealthMonitor(home)
        monitor.watch_context(cold)
        monitor.sweep()
        balancer = LoadBalancer([hot, cold], health=monitor)
        events = balancer.rebalance_once()
        assert len(events) == 1
        assert events[0].target_id == "cold3"

    def test_sim_world_probe(self, sim_world):
        _orb, sim, _tb, contexts = sim_world
        monitor = HealthMonitor(contexts["client"])
        monitor.watch_context(contexts["s1"])
        t0 = sim.clock.now()
        result = monitor.probe("s1")
        assert result.alive
        assert sim.clock.now() > t0  # the probe cost virtual time
