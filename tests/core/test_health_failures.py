"""HealthMonitor failure paths: wedged peers, probe timeouts, and the
breaker/balancer integration that consumes the verdicts."""

import time

import pytest

from repro.core import LoadBalancer
from repro.core.health import HealthMonitor
from repro.core.instrumentation import HookBus
from repro.core.objref import ProtocolEntry
from repro.core.resilience import BreakerRegistry, BreakerState

from tests.core.conftest import Counter


@pytest.fixture
def home(wall_orb):
    return wall_orb.context("home-hf")


class TestProbeFailures:
    def test_probe_timeout_on_wedged_peer(self, home):
        """A listener that accepts traffic but never serves it: the
        probe must come back dead within ``probe_timeout``, not hang for
        the full call timeout."""
        transport = home.transports["inproc"]
        listener = transport.listen({"key": "blackhole-hf"})
        entry = ProtocolEntry("nexus", home._base_proto_data(
            [{"transport": "inproc", "key": "blackhole-hf"}]))
        monitor = HealthMonitor(home, probe_timeout=0.2)
        monitor.watch_entry("wedged", entry)
        started = time.monotonic()
        result = monitor.probe("wedged")
        elapsed = time.monotonic() - started
        assert not result.alive
        assert "timed out" in result.error
        assert elapsed < 5.0                # probe_timeout, not 30s
        assert not monitor.is_alive("wedged")
        listener.close()

    def test_probe_timeout_does_not_wedge_monitor(self, home, wall_orb):
        """After a timed-out probe the monitor still probes healthy
        targets (the dead client was closed, not leaked)."""
        transport = home.transports["inproc"]
        listener = transport.listen({"key": "blackhole-hf2"})
        entry = ProtocolEntry("nexus", home._base_proto_data(
            [{"transport": "inproc", "key": "blackhole-hf2"}]))
        live = wall_orb.context("live-hf")
        monitor = HealthMonitor(home, probe_timeout=0.2)
        monitor.watch_entry("wedged", entry)
        monitor.watch_context(live)
        verdicts = monitor.sweep()
        assert not verdicts["wedged"].alive
        assert verdicts["live-hf"].alive
        listener.close()

    def test_shutdown_context_probe_feeds_breakers(self, home, wall_orb):
        """A dead-context verdict opens the existing breakers for that
        context; a recovery verdict closes them again."""
        target = wall_orb.context("target-hf")
        home.call_timeout = 0.3
        bus = HookBus()
        transitions = []
        bus.on("breaker_open", lambda e: transitions.append("open"))
        bus.on("breaker_close", lambda e: transitions.append("close"))
        home.breakers = BreakerRegistry(home.clock, failure_threshold=1,
                                        hooks=bus)
        # A breaker exists only once some GP has used the pair.
        home.breakers.get("target-hf", "nexus")

        monitor = HealthMonitor(home)       # defaults to home.breakers
        assert monitor.breakers is home.breakers
        monitor.watch_context(target)
        target.stop()
        assert not monitor.probe("target-hf").alive
        assert home.breakers.state("target-hf", "nexus") \
            is BreakerState.OPEN
        assert transitions == ["open"]

        # The context comes back (same id, fresh endpoints): breakers
        # close.  The orb keeps stopped ids reserved, so release it the
        # way a restart would.
        del wall_orb.contexts["target-hf"]
        monitor.last.pop("target-hf")
        revived = wall_orb.context("target-hf")
        monitor.watch_context(revived)      # re-learn its addresses
        assert monitor.probe("target-hf").alive
        assert home.breakers.state("target-hf", "nexus") \
            is BreakerState.CLOSED
        assert transitions == ["open", "close"]
        revived.stop()


class TestBalancerRefusesDead:
    def test_dead_receiver_refused_even_when_idle(self, wall_orb):
        """The balancer must not ship load onto a context whose probe
        failed, no matter how attractive its (stale) load figures look."""
        home = wall_orb.context("home-bal")
        hot = wall_orb.context("hot-bal")
        dead = wall_orb.context("dead-bal")
        home.call_timeout = 0.3
        oref = hot.export(Counter())
        hot.monitor.record_request(oref.object_id, 1.0)
        hot.monitor.busy_fraction.value = 0.95
        dead.monitor.busy_fraction.value = 0.0   # looks perfect on paper

        monitor = HealthMonitor(home)
        monitor.watch_context(dead)
        dead.stop()
        monitor.sweep()
        assert not monitor.is_alive("dead-bal")

        balancer = LoadBalancer([hot, dead], health=monitor)
        assert balancer.rebalance_once() == []
        assert oref.object_id in hot.servants

    def test_recovered_receiver_usable_again(self, wall_orb):
        home = wall_orb.context("home-bal2")
        hot = wall_orb.context("hot-bal2")
        cold = wall_orb.context("cold-bal2")
        oref = hot.export(Counter())
        hot.monitor.record_request(oref.object_id, 1.0)
        hot.monitor.busy_fraction.value = 0.95
        cold.monitor.busy_fraction.value = 0.05

        monitor = HealthMonitor(home)
        monitor.watch_context(cold)
        # Fake a dead verdict, then let a fresh sweep overturn it.
        home.call_timeout = 0.3
        monitor.last["cold-bal2"] = monitor.probe("cold-bal2")
        assert monitor.is_alive("cold-bal2")
        balancer = LoadBalancer([hot, cold], health=monitor)
        events = balancer.rebalance_once()
        assert [e.target_id for e in events] == ["cold-bal2"]
