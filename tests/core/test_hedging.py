"""Hedged requests under the deterministic simulator.

The acceptance scenario: with a seeded slow-link FaultPlan, the p99
latency of retry-safe calls *improves* when hedging is enabled — and the
whole run is bit-for-bit reproducible from the seed.
"""

import pytest

from repro.core import ORB
from repro.core.instrumentation import HookBus, LatencyTracker
from repro.core.resilience import HedgePolicy
from repro.faults import FaultPlan
from repro.simnet import NetworkSimulator, paper_testbed

from tests.core.conftest import Counter
from tests.core.test_resilience import Register


class TestHedgePolicyUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(quantile=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(quantile=1.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=0)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay=-1)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay=2.0, max_delay=1.0)

    def test_disabled_never_hedges(self):
        tracker = LatencyTracker()
        for _ in range(100):
            tracker.observe(1.0)
        assert HedgePolicy(enabled=False).hedge_delay(tracker) is None
        assert HedgePolicy(max_hedges=0).hedge_delay(tracker) is None
        assert HedgePolicy().hedge_delay(None) is None

    def test_min_samples_gate(self):
        policy = HedgePolicy(min_samples=5)
        tracker = LatencyTracker()
        for _ in range(4):
            tracker.observe(1.0)
        assert policy.hedge_delay(tracker) is None
        tracker.observe(1.0)
        assert policy.hedge_delay(tracker) == pytest.approx(1.0)

    def test_delay_is_the_tracked_quantile_clamped(self):
        tracker = LatencyTracker()
        for ms in range(1, 101):                 # 0.01 .. 1.00
            tracker.observe(ms / 100.0)
        policy = HedgePolicy(quantile=0.9, min_samples=10)
        assert policy.hedge_delay(tracker) == pytest.approx(0.91)
        low = HedgePolicy(quantile=0.9, min_samples=10, min_delay=2.0)
        assert low.hedge_delay(tracker) == pytest.approx(2.0)
        high = HedgePolicy(quantile=0.9, min_samples=10, max_delay=0.5)
        assert high.hedge_delay(tracker) == pytest.approx(0.5)


class TestLatencyTrackerUnit:
    def test_nearest_rank_quantile(self):
        tracker = LatencyTracker()
        assert tracker.quantile(0.5) is None     # no samples yet
        for v in (0.3, 0.1, 0.2, 0.4):
            tracker.observe(v)
        assert tracker.quantile(0.5) == pytest.approx(0.3)
        assert tracker.quantile(0.99) == pytest.approx(0.4)

    def test_window_slides(self):
        tracker = LatencyTracker(window=3)
        for v in (9.0, 1.0, 1.0, 1.0):
            tracker.observe(v)
        assert tracker.count == 4                # total ever seen
        assert tracker.quantile(0.99) == pytest.approx(1.0)  # 9.0 aged out

    def test_negative_samples_ignored(self):
        tracker = LatencyTracker()
        tracker.observe(-1.0)
        assert tracker.count == 0


def _world(hedge_policy=None):
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    s1 = orb.context("s1", machine=tb.m1)
    if hedge_policy is not None:
        client.hedge_policy = hedge_policy
    return orb, sim, client, s1


def _watch(gp):
    events = []
    durations = []
    for kind in ("hedge", "hedge_win", "hedge_loss"):
        gp.hooks.on(kind, lambda e, k=kind: events.append((k, e.data)))
    gp.hooks.on("request",
                lambda e: durations.append(e.data["duration"])
                if e.data["outcome"] == "ok" else None)
    return events, durations


class TestHedgedInvocation:
    WARMUP = 10

    def _policy(self):
        return HedgePolicy(enabled=True, quantile=0.9,
                           min_samples=self.WARMUP)

    def test_hedge_beats_a_slow_primary(self, ):
        orb, sim, client, s1 = _world(self._policy())
        try:
            servant = Register()
            gp = client.bind(s1.export(servant))
            events, durations = _watch(gp)
            for i in range(self.WARMUP):
                gp.invoke("put", i)
            assert events == []                  # fast path: no hedging
            plan = FaultPlan(hooks=HookBus())
            plan.delay(5.0, src="M0", dst="M1", count=1)
            sim.fault_plan = plan
            assert gp.invoke("put", 99) == 99
            kinds = [k for k, _ in events]
            assert kinds == ["hedge", "hedge_win"]
            win = dict(events[1][1])
            # The primary ate the 5s injected delay; the hedge leg,
            # launched at ~p90 of the warm latency, returned long before.
            assert win["primary_latency"] > 5.0
            assert win["latency"] < 1.0
            # The call's reported duration is the winner's, and both
            # legs executed the idempotent method.
            assert durations[-1] == pytest.approx(win["latency"])
            assert servant.calls == self.WARMUP + 2
        finally:
            orb.shutdown()

    def test_hedge_loses_to_a_slow_hedge(self):
        orb, sim, client, s1 = _world(self._policy())
        try:
            gp = client.bind(s1.export(Register()))
            events, durations = _watch(gp)
            for i in range(self.WARMUP):
                gp.invoke("put", i)
            plan = FaultPlan(hooks=HookBus())
            plan.delay(5.0, src="M0", dst="M1", count=2)  # both legs slow
            sim.fault_plan = plan
            assert gp.invoke("put", 99) == 99
            kinds = [k for k, _ in events]
            assert kinds == ["hedge", "hedge_loss"]
            # Effective latency falls back to the primary's.
            assert durations[-1] > 5.0
        finally:
            orb.shutdown()

    def test_unsafe_methods_are_never_hedged(self):
        orb, sim, client, s1 = _world(self._policy())
        try:
            servant = Counter()
            gp = client.bind(s1.export(servant))
            events, durations = _watch(gp)
            for _ in range(self.WARMUP):
                gp.invoke("add", 1)              # not retry_safe
            plan = FaultPlan(hooks=HookBus())
            plan.delay(5.0, src="M0", dst="M1", count=1)
            sim.fault_plan = plan
            gp.invoke("add", 1)
            assert events == []                  # duplicate dispatch refused
            assert durations[-1] > 5.0
            assert servant.n == self.WARMUP + 1  # executed exactly once
        finally:
            orb.shutdown()

    def test_hedging_waits_for_min_samples(self):
        orb, sim, client, s1 = _world(self._policy())
        try:
            gp = client.bind(s1.export(Register()))
            events, _durations = _watch(gp)
            plan = FaultPlan(hooks=HookBus())
            plan.delay(5.0, src="M0", dst="M1")  # every request is slow
            sim.fault_plan = plan
            for i in range(3):                   # < min_samples
                gp.invoke("put", i)
            assert events == []                  # tracker not warm yet
        finally:
            orb.shutdown()

    def test_disabled_by_default(self):
        orb, sim, client, s1 = _world()          # context default policy
        try:
            gp = client.bind(s1.export(Register()))
            events, _durations = _watch(gp)
            for i in range(30):
                gp.invoke("put", i)
            plan = FaultPlan(hooks=HookBus())
            plan.delay(5.0, src="M0", dst="M1", count=1)
            sim.fault_plan = plan
            gp.invoke("put", 99)
            assert events == []
        finally:
            orb.shutdown()


def _tail_workload(hedging: bool, calls: int = 80, seed: int = 10):
    """A retry-safe workload over a link whose requests are sometimes
    slow (seeded 10% chance of +2s); returns the per-call latencies
    observed after the latency tracker warmed up."""
    policy = HedgePolicy(enabled=True, quantile=0.9, min_samples=20) \
        if hedging else None
    orb, sim, client, s1 = _world(policy)
    try:
        gp = client.bind(s1.export(Register()))
        _events, durations = _watch(gp)
        for i in range(20):                      # warm-up, no faults
            gp.invoke("put", i)
        plan = FaultPlan(seed=seed, hooks=HookBus())
        plan.delay(2.0, probability=0.1, src="M0", dst="M1")
        sim.fault_plan = plan
        for i in range(calls):
            gp.invoke("put", i)
        return durations[20:]
    finally:
        orb.shutdown()


def _quantile(samples, q):
    ordered = sorted(samples)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


class TestTailLatency:
    def test_p99_improves_with_hedging(self):
        hedged = _tail_workload(hedging=True)
        unhedged = _tail_workload(hedging=False)
        assert len(hedged) == len(unhedged) == 80
        p99_hedged = _quantile(hedged, 0.99)
        p99_unhedged = _quantile(unhedged, 0.99)
        # The injected tail is ~2s; a hedge launched at ~p90 of the warm
        # distribution cuts the slow calls to roughly 2x the base RTT.
        assert p99_unhedged > 2.0
        assert p99_hedged < p99_unhedged / 2
        # The median is not noticeably hurt (hedges only fire on the tail).
        assert _quantile(hedged, 0.5) == pytest.approx(
            _quantile(unhedged, 0.5), rel=0.05)

    def test_tail_workload_is_deterministic(self):
        assert _tail_workload(hedging=True) == _tail_workload(hedging=True)
