"""Tests for the observability hook bus and its GP/migration wiring."""

import pytest

from repro.core.instrumentation import GLOBAL_HOOKS, HookBus, HookEvent
from repro.core.migration import migrate

from tests.core.conftest import Counter


@pytest.fixture(autouse=True)
def clean_global_hooks():
    yield
    GLOBAL_HOOKS.clear()


class TestHookBus:
    def test_emit_to_handler(self):
        bus = HookBus()
        seen = []
        bus.on("x", seen.append)
        bus.emit("x", a=1)
        assert seen == [HookEvent("x", {"a": 1})]

    def test_emit_without_handlers_is_noop(self):
        HookBus().emit("nothing", a=1)

    def test_off(self):
        bus = HookBus()
        seen = []
        bus.on("x", seen.append)
        bus.off("x", seen.append)
        bus.off("x", seen.append)  # idempotent
        bus.emit("x")
        assert seen == []

    def test_raising_handler_detached(self):
        bus = HookBus()
        calls = []

        def bad(event):
            calls.append("bad")
            raise RuntimeError("observer bug")

        bus.on("x", bad)
        bus.on("x", lambda e: calls.append("good"))
        bus.emit("x")
        bus.emit("x")
        # The bad handler ran once, got detached; the good one survived.
        assert calls == ["bad", "good", "good"]
        assert len(bus.errors) == 1

    def test_handler_count(self):
        bus = HookBus()
        bus.on("a", lambda e: None)
        bus.on("a", lambda e: None)
        bus.on("b", lambda e: None)
        assert bus.handler_count("a") == 2
        assert bus.handler_count() == 3

    def test_clear(self):
        bus = HookBus()
        bus.on("a", lambda e: None)
        bus.clear()
        assert bus.handler_count() == 0


class TestGpWiring:
    def test_selection_and_request_events(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        events = []
        gp.hooks.on("selection", events.append)
        gp.hooks.on("request", events.append)
        gp.invoke("add", 1)
        kinds = [e.kind for e in events]
        assert kinds == ["selection", "request"]
        assert events[0].data["proto_id"] == "shm"
        assert events[1].data["outcome"] == "ok"
        assert events[1].data["duration"] >= 0
        assert events[1].data["method"] == "add"

    def test_error_outcome(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        events = []
        gp.hooks.on("request", events.append)
        from repro.exceptions import RemoteException

        with pytest.raises(RemoteException):
            gp.invoke("fail", "x")
        assert events[-1].data["outcome"] == "error"

    def test_global_hooks_fire_too(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        seen = []
        GLOBAL_HOOKS.on("request", seen.append)
        gp.invoke("get")
        assert len(seen) == 1
        assert seen[0].data["object_id"] == gp.oref.object_id

    def test_moved_event(self, wall_orb):
        from repro.core.context import Placement

        a = wall_orb.context("ia", placement=Placement("ma", "la", "sa"))
        b = wall_orb.context("ib", placement=Placement("mb", "lb", "sb"))
        client = wall_orb.context("ic",
                                  placement=Placement("mc", "lc", "sc"))
        oref = a.export(Counter())
        gp = client.bind(oref)
        gp.invoke("add", 1)
        moves = []
        migrations = []
        gp.hooks.on("moved", moves.append)
        GLOBAL_HOOKS.on("migration", migrations.append)
        migrate(a, oref.object_id, b)
        gp.invoke("get")
        assert len(migrations) == 1
        assert migrations[0].data["source"] == "ia"
        assert migrations[0].data["target"] == "ib"
        assert len(moves) == 1
        assert moves[0].data["to_context"] == "ib"

    def test_watching_adaptivity(self, sim_world):
        """The observability use case: log every protocol the GP uses
        across a migration tour."""
        orb, _sim, tb, contexts = sim_world
        from repro.core.capabilities import CallQuotaCapability

        oref = contexts["s1"].export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(100)]])
        gp = contexts["client"].bind(oref)
        protocols = []
        gp.hooks.on("selection",
                    lambda e: protocols.append(e.data["proto_id"]))
        gp.invoke("add", 1)
        migrate(contexts["s1"], oref.object_id, contexts["s4"])
        gp.invoke("add", 1)
        # glue (first call), glue (stale, ends MOVED), then shm (retry).
        assert protocols[0] == "glue"
        assert protocols[-1] == "shm"
