"""End-to-end invocation tests over the wall-clock ORB."""

import numpy as np
import pytest

from repro.core import ORB
from repro.core.context import Placement
from repro.core.selection import PoolOrderPolicy
from repro.exceptions import (
    InterfaceError,
    MethodNotExposedError,
    NoApplicableProtocolError,
    ObjectNotFoundError,
    RemoteException,
)
from repro.idl.interface import InterfaceView

from tests.core.conftest import Counter


class TestBasicInvocation:
    def test_invoke(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        assert gp.invoke("add", 5) == 5
        assert gp.invoke("add", 2) == 7
        assert gp.invoke("get") == 7

    def test_stub(self, wall_pair):
        server, client = wall_pair
        stub = client.bind(server.export(Counter(10))).narrow()
        assert stub.add(1) == 11
        assert stub.get() == 11

    def test_remote_exception(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        with pytest.raises(RemoteException) as err:
            gp.invoke("fail", "kaboom")
        assert err.value.remote_type == "RuntimeError"
        assert "kaboom" in str(err.value)

    def test_unknown_object(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter())
        oref.object_id = "ghost"
        gp = client.bind(oref)
        with pytest.raises(RemoteException) as err:
            gp.invoke("get")
        assert err.value.remote_type == "ObjectNotFoundError"

    def test_interface_checked_client_side(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        with pytest.raises(InterfaceError):
            gp.invoke("no_such_method")

    def test_oneway(self, wall_pair):
        server, client = wall_pair
        counter = Counter()
        gp = client.bind(server.export(counter))
        gp.invoke_oneway("bump")
        # Oneway is fire-and-forget: poll until the server thread ran it.
        import time

        deadline = time.time() + 5
        while counter.n == 0 and time.time() < deadline:
            time.sleep(0.005)
        assert counter.n == 1

    def test_async(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        futures = [gp.invoke_async("add", 1) for _ in range(10)]
        results = sorted(f.result(timeout=10) for f in futures)
        assert results == list(range(1, 11))

    def test_async_exception(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        fut = gp.invoke_async("fail", "async boom")
        with pytest.raises(RemoteException):
            fut.result(timeout=10)

    def test_array_payload_roundtrip(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        arr = np.arange(10_000, dtype=np.float64)
        out = gp.invoke("echo", arr)
        np.testing.assert_array_equal(out, arr)

    def test_objref_as_argument(self, wall_pair):
        """Passing a GP's OR as an argument — capability exchange (§4)."""
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        echoed = gp.invoke("echo", gp.dup())
        assert echoed.object_id == gp.oref.object_id
        # The echoed OR is fully functional.
        gp2 = client.bind(echoed)
        assert gp2.invoke("add", 3) == 3

    def test_two_gps_share_state(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter())
        gp1 = client.bind(oref)
        gp2 = client.bind(oref)
        gp1.invoke("add", 4)
        assert gp2.invoke("get") == 4

    def test_ping_control_surface(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        info = gp.ping()
        assert info["ok"] and info["context_id"] == server.id


class TestInterfaceViews:
    def test_view_blocks_methods_server_side(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter(),
                             view=InterfaceView("ReadOnly", ["get"]))
        gp = client.bind(oref)
        assert gp.invoke("get") == 0
        # The stub/interface doesn't even expose add...
        with pytest.raises(InterfaceError):
            gp.invoke("add", 1)

    def test_view_enforced_even_with_forged_interface(self, wall_pair):
        """A client widening its local interface copy still can't call
        hidden methods: enforcement is server-side."""
        server, client = wall_pair
        from repro.idl.interface import interface_of

        oref = server.export(Counter(),
                             view=InterfaceView("ReadOnly", ["get"]))
        oref.interface = interface_of(Counter)  # forge the full interface
        gp = client.bind(oref)
        with pytest.raises(RemoteException) as err:
            gp.invoke("add", 1)
        assert err.value.remote_type == "MethodNotExposedError"

    def test_same_servant_two_views(self, wall_pair):
        """The intro's scenario: one server object, full access for one
        client, subset access for another."""
        server, client = wall_pair
        counter = Counter()
        full = server.export(counter)
        restricted = server.export(counter,
                                   view=InterfaceView("RO", ["get"]))
        gp_full = client.bind(full)
        gp_ro = client.bind(restricted)
        gp_full.invoke("add", 9)
        assert gp_ro.invoke("get") == 9


class TestSelectionBehaviour:
    def test_same_machine_prefers_shm(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        assert gp.selected_proto_id == "shm"

    def test_remote_placement_falls_back_to_nexus(self, wall_orb):
        server = wall_orb.context("s", placement=Placement(
            machine="mars", lan="mars-lan", site="mars-site"))
        client = wall_orb.context("c")
        gp = client.bind(server.export(Counter()))
        # Different (declared) machines: shm inapplicable.
        assert gp.selected_proto_id == "nexus"
        assert gp.invoke("add", 1) == 1

    def test_pool_can_forbid_protocols(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.pool.disallow("shm")
        assert gp.selected_proto_id == "nexus"
        assert gp.invoke("add", 1) == 1

    def test_empty_pool_fails(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        for pid in list(gp.pool):
            gp.pool.disallow(pid)
        with pytest.raises(NoApplicableProtocolError):
            gp.invoke("get")

    def test_or_table_edit_changes_choice(self, wall_pair):
        """Open Implementation: editing the GP's OR steers selection."""
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.drop_protocol("shm")
        assert gp.selected_proto_id == "nexus"

    def test_pool_order_policy(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()),
                         policy=PoolOrderPolicy())
        gp.pool.reorder(["nexus", "shm", "glue"])
        assert gp.selected_proto_id == "nexus"
        gp.pool.reorder(["shm", "nexus", "glue"])
        assert gp.selected_proto_id == "shm"

    def test_per_request_selection(self, wall_pair):
        """Selection is re-run per request: pool edits between calls
        take effect without rebinding."""
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        assert gp.invoke("add", 1) == 1
        first = gp.selected_proto_id
        gp.pool.disallow(first)
        assert gp.invoke("add", 1) == 2
        assert gp.selected_proto_id != first


class TestEncodings:
    def test_cdr_context(self, wall_orb):
        server = wall_orb.context("s-cdr", encoding="cdr")
        client = wall_orb.context("c-cdr")
        gp = client.bind(server.export(Counter()))
        assert gp.invoke("add", 7) == 7

    def test_mixed_encodings_coexist(self, wall_orb):
        xdr_server = wall_orb.context("sx")
        cdr_server = wall_orb.context("sc", encoding="cdr")
        client = wall_orb.context("cc")
        gp_x = client.bind(xdr_server.export(Counter()))
        gp_c = client.bind(cdr_server.export(Counter()))
        assert gp_x.invoke("add", 1) == 1
        assert gp_c.invoke("add", 2) == 2
