"""Tests for object migration, forwarding, and GP adaptivity."""

import pytest

from repro.core.context import Placement
from repro.core.migration import migrate
from repro.exceptions import MigrationError, RemoteException

from tests.core.conftest import Counter


@pytest.fixture
def three_contexts(wall_orb):
    a = wall_orb.context("A", placement=Placement("mA", "lanA", "siteA"))
    b = wall_orb.context("B", placement=Placement("mB", "lanB", "siteB"))
    c = wall_orb.context("C", placement=Placement("mC", "lanC", "siteC"))
    return a, b, c


class TestMigrate:
    def test_state_preserved_by_reference(self, three_contexts):
        a, b, _c = three_contexts
        oref = a.export(Counter())
        client = a  # invoke locally through a GP anyway
        gp = client.bind(oref)
        gp.invoke("add", 5)
        migrate(a, oref.object_id, b)
        assert gp.invoke("get") == 5  # transparent to the caller

    def test_state_preserved_by_value(self, three_contexts):
        a, b, _c = three_contexts
        counter = Counter()
        oref = a.export(counter)
        gp = a.bind(oref)
        gp.invoke("add", 7)
        migrate(a, oref.object_id, b, by_value=True)
        assert gp.invoke("get") == 7
        # By-value migration made a *copy*: the original instance is
        # detached from the living object.
        gp.invoke("add", 1)
        assert counter.n == 7

    def test_by_value_requires_state_protocol(self, three_contexts):
        a, b, _c = three_contexts
        from repro.idl import remote_interface, remote_method

        @remote_interface("Plain")
        class Plain:
            @remote_method
            def m(self):
                return 1

        oref = a.export(Plain())
        with pytest.raises(MigrationError):
            migrate(a, oref.object_id, b, by_value=True)

    def test_version_bumps(self, three_contexts):
        a, b, c = three_contexts
        oref = a.export(Counter())
        o2 = migrate(a, oref.object_id, b)
        assert o2.version == 1
        o3 = migrate(b, oref.object_id, c)
        # Versions order *incarnations* globally, not per-context: the
        # second hop must be strictly newer than the first even though
        # B itself had no prior forward for the object.
        assert o3.version == 2

    def test_forwarding_chain_followed(self, three_contexts):
        a, b, c = three_contexts
        oref = a.export(Counter())
        gp = a.bind(oref)
        gp.invoke("add", 1)
        migrate(a, oref.object_id, b)
        migrate(b, oref.object_id, c)
        # The GP still points at A; it must follow A -> B -> C.
        assert gp.invoke("get") == 1
        assert gp.oref.context_id == "C"

    def test_double_migration_two_moved_hops(self, three_contexts):
        """A -> B -> C while a GP still points at A: the stale GP eats
        two MOVED hops in one logical call, re-running protocol
        selection per hop, and the OR version increases strictly
        along the chain."""
        a, b, c = three_contexts
        oref = a.export(Counter())
        gp = a.bind(oref)
        gp.invoke("add", 1)
        o2 = migrate(a, oref.object_id, b)
        o3 = migrate(b, oref.object_id, c)
        assert oref.version < o2.version < o3.version

        moved = []
        selections = []
        gp.hooks.on("moved", moved.append)
        gp.hooks.on("selection", selections.append)
        assert gp.invoke("get") == 1
        # Two forwarding records, two MOVED replies, one re-selection
        # per hop (plus the call's initial selection) — and the GP
        # lands on the final incarnation.
        assert len(moved) == 2
        assert len(selections) == 3
        assert gp.oref.context_id == "C"
        assert gp.oref.version == o3.version
        # The chain collapses: the *next* call goes straight to C.
        moved.clear()
        assert gp.invoke("get") == 1
        assert moved == []

    def test_moved_reply_patches_resolver_cache(self, three_contexts):
        """A MOVED reply seen by any GP updates the context's resolver
        cache in place for every alias of the moved object."""
        a, b, _c = three_contexts
        oref = a.export(Counter())
        gp = a.bind(oref)
        a.resolver.put("svc/main", oref, 1)
        a.resolver.put("svc/alias", oref, 1)
        new_oref = migrate(a, oref.object_id, b)
        assert gp.invoke("add", 2) == 2  # eats the MOVED reply
        for name in ("svc/main", "svc/alias"):
            cached = a.resolver.get(name)
            assert cached is not None
            assert cached.context_id == "B"
            assert cached.version == new_oref.version

    def test_unknown_object(self, three_contexts):
        a, b, _c = three_contexts
        with pytest.raises(MigrationError):
            migrate(a, "ghost", b)

    def test_same_context_rejected(self, three_contexts):
        a, _b, _c = three_contexts
        oref = a.export(Counter())
        with pytest.raises(MigrationError):
            migrate(a, oref.object_id, a)

    def test_pinned_object_rejected(self, three_contexts):
        a, b, _c = three_contexts
        oref = a.export(Counter(), migratable=False)
        with pytest.raises(MigrationError):
            migrate(a, oref.object_id, b)

    def test_source_forwards_new_clients_too(self, three_contexts):
        a, b, _c = three_contexts
        oref = a.export(Counter())
        migrate(a, oref.object_id, b)
        # A client binding the *old* OR after migration still works.
        gp = a.bind(oref)
        assert gp.invoke("add", 2) == 2
        assert gp.oref.context_id == "B"

    def test_glue_stacks_move(self, three_contexts):
        from repro.core.capabilities import CallQuotaCapability

        a, b, _c = three_contexts
        oref = a.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(50, applicability="always")]])
        gp = a.bind(oref)
        gp.pool.disallow("shm")
        gp.invoke("add", 1)
        migrate(a, oref.object_id, b)
        assert gp.invoke("add", 1) == 2
        # After following the MOVED reply the GP's glue entry targets B.
        assert gp.oref.context_id == "B"
        glue = gp.oref.entry("glue")
        assert glue is not None
        assert glue.proto_data["machine"] == "mB"

    def test_migrated_object_gone_from_source(self, three_contexts):
        a, b, _c = three_contexts
        oref = a.export(Counter())
        migrate(a, oref.object_id, b)
        assert oref.object_id not in a.servants
        assert oref.object_id in b.servants
        assert oref.object_id in a.forwards


class TestMonitorIntegration:
    def test_dispatch_records_load(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter())
        gp = client.bind(oref)
        for _ in range(5):
            gp.invoke("add", 1)
        assert server.monitor.total_requests == 5
        assert server.monitor.per_object[oref.object_id].requests == 5
        assert server.monitor.busiest_object() == oref.object_id
