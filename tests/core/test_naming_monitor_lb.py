"""Tests for the name service, load monitor, and load balancer."""

import pytest

from repro.core import ORB, LoadBalancer
from repro.core.naming import NameServer, NameService, resolve_oref
from repro.exceptions import (
    InvalidNameError,
    NameAlreadyBoundError,
    NameNotFoundError,
    RemoteException,
)
from repro.simnet.clock import VirtualClock

from tests.core.conftest import Counter


def sample_oref(wall_orb=None):
    orb = wall_orb or ORB()
    ctx = orb.context()
    return ctx.export(Counter())


class TestNameService:
    def test_bind_resolve(self, wall_orb):
        ns = NameService()
        oref = sample_oref(wall_orb)
        ns.bind("counter", oref)
        assert ns.resolve("counter").object_id == oref.object_id

    def test_bind_duplicate(self, wall_orb):
        ns = NameService()
        oref = sample_oref(wall_orb)
        ns.bind("x", oref)
        with pytest.raises(NameAlreadyBoundError):
            ns.bind("x", oref)

    def test_rebind(self, wall_orb):
        ns = NameService()
        ns.rebind("x", sample_oref(wall_orb))
        second = sample_oref(wall_orb)
        ns.rebind("x", second)
        assert ns.resolve("x").object_id == second.object_id

    def test_resolve_missing(self):
        with pytest.raises(NameNotFoundError):
            NameService().resolve("ghost")

    def test_empty_name_rejected(self, wall_orb):
        """Empty / non-string names are argument errors, not lookups."""
        ns = NameService()
        oref = sample_oref(wall_orb)
        for bad in ("", None, 42):
            with pytest.raises(InvalidNameError):
                ns.bind(bad, oref)
            with pytest.raises(InvalidNameError):
                ns.rebind(bad, oref)
        # InvalidNameError is a ValueError, NOT a NameNotFoundError.
        assert issubclass(InvalidNameError, ValueError)
        assert not issubclass(InvalidNameError, NameNotFoundError)

    def test_unbind(self, wall_orb):
        ns = NameService()
        ns.bind("x", sample_oref(wall_orb))
        ns.unbind("x")
        assert "x" not in ns
        with pytest.raises(NameNotFoundError):
            ns.unbind("x")

    def test_names_sorted(self, wall_orb):
        ns = NameService()
        oref = sample_oref(wall_orb)
        ns.bind("b", oref)
        ns.bind("a", oref)
        assert ns.names() == ["a", "b"]

    def test_resolve_returns_copy(self, wall_orb):
        ns = NameService()
        ns.bind("x", sample_oref(wall_orb))
        a = ns.resolve("x")
        a.protocols.clear()
        assert ns.resolve("x").protocols

    def test_orb_sugar(self, wall_orb):
        oref = sample_oref(wall_orb)
        wall_orb.bind_name("svc", oref)
        assert wall_orb.resolve("svc").object_id == oref.object_id


class TestRemoteNameServer:
    def test_resolve_over_the_wire(self, wall_orb):
        """The name service itself served remotely: bootstrap pattern."""
        home = wall_orb.context("home")
        client = wall_orb.context("remote-client")
        service = NameService()
        ns_oref = home.export(NameServer(service))
        counter_oref = home.export(Counter())
        service.bind("counter", counter_oref)

        ns = client.bind(ns_oref).narrow()
        resolved = resolve_oref(ns, "counter")
        gp = client.bind(resolved)
        assert gp.invoke("add", 5) == 5
        assert ns.names() == ["counter"]

    def test_remote_miss_is_a_typed_reply(self, wall_orb):
        """Misses come back as data, not a marshalled exception."""
        home = wall_orb.context("home-miss")
        client = wall_orb.context("client-miss")
        ns = client.bind(home.export(NameServer(NameService()))).narrow()
        reply = ns.resolve("ghost")
        assert reply["found"] is False
        assert reply["name"] == "ghost"
        with pytest.raises(NameNotFoundError):
            resolve_oref(ns, "ghost")

    def test_remote_bind_and_errors(self, wall_orb):
        home = wall_orb.context("home2")
        client = wall_orb.context("client2")
        service = NameService()
        ns = client.bind(home.export(NameServer(service))).narrow()
        oref = home.export(Counter())
        ns.bind("c", oref)
        with pytest.raises(RemoteException) as err:
            ns.bind("c", oref)
        assert err.value.remote_type == "NameAlreadyBoundError"


class FakeCtx:
    """Monitor-only stand-in for load tests."""

    def __init__(self, name, clock):
        from repro.core.monitor import LoadMonitor

        self.id = name
        self.monitor = LoadMonitor(clock)


class TestLoadMonitor:
    def test_busy_fraction_tracks_saturation(self):
        clock = VirtualClock()
        ctx = FakeCtx("x", clock)
        for _ in range(50):
            clock.advance(1.0)
            ctx.monitor.record_request("obj", 0.9)
        assert ctx.monitor.load > 0.7

    def test_idle_context_low_load(self):
        clock = VirtualClock()
        ctx = FakeCtx("x", clock)
        for _ in range(50):
            clock.advance(10.0)
            ctx.monitor.record_request("obj", 0.01)
        assert ctx.monitor.load < 0.1

    def test_busiest_object(self):
        clock = VirtualClock()
        ctx = FakeCtx("x", clock)
        clock.advance(1)
        ctx.monitor.record_request("cold", 0.1)
        clock.advance(1)
        ctx.monitor.record_request("hot", 5.0)
        assert ctx.monitor.busiest_object() == "hot"

    def test_reset(self):
        clock = VirtualClock()
        ctx = FakeCtx("x", clock)
        clock.advance(1)
        ctx.monitor.record_request("o", 1.0)
        ctx.monitor.reset()
        assert ctx.monitor.total_requests == 0
        assert ctx.monitor.load == 0.0

    def test_same_instant_burst_no_crash(self):
        clock = VirtualClock()
        ctx = FakeCtx("x", clock)
        for _ in range(10):
            ctx.monitor.record_request("o", 0.0)
        assert ctx.monitor.total_requests == 10


class TestLoadBalancer:
    def make_world(self):
        """Simulated cluster with a hot and a cold context."""
        from repro.simnet import NetworkSimulator, two_machine_lan

        sim = NetworkSimulator(two_machine_lan())
        orb = ORB(simulator=sim)
        hot = orb.context("hot", machine="A")
        cold = orb.context("cold", machine="B")
        return orb, sim, hot, cold

    def drive(self, ctx, oref, gp, n, service=0.9, step=1.0):
        sim_clock = ctx.clock
        for _ in range(n):
            sim_clock.advance(step)
            gp.invoke("add", 1)

    def test_hot_context_sheds_object(self):
        orb, sim, hot, cold = self.make_world()
        client = orb.context("client", machine="A")
        oref = hot.export(Counter())
        gp = client.bind(oref)
        # Saturate the hot context: requests arrive back-to-back.
        for _ in range(200):
            gp.invoke("add", 1)
        # Force monitor state: real invokes are fast under simulation, so
        # synthesize the load level the scenario implies.
        hot.monitor.busy_fraction.value = 0.95
        cold.monitor.busy_fraction.value = 0.05
        lb = LoadBalancer([hot, cold], high_water=0.8, low_water=0.4)
        events = lb.rebalance_once()
        assert len(events) == 1
        assert events[0].source_id == "hot"
        assert events[0].target_id == "cold"
        assert oref.object_id in cold.servants
        # The client keeps working through the forward.
        assert gp.invoke("get") == 200

    def test_no_action_when_balanced(self):
        orb, _sim, hot, cold = self.make_world()
        hot.monitor.busy_fraction.value = 0.5
        cold.monitor.busy_fraction.value = 0.5
        lb = LoadBalancer([hot, cold])
        assert lb.rebalance_once() == []

    def test_no_receiver_no_action(self):
        orb, _sim, hot, cold = self.make_world()
        oref = hot.export(Counter())
        hot.monitor.record_request(oref.object_id, 1.0)
        hot.monitor.busy_fraction.value = 0.9
        cold.monitor.busy_fraction.value = 0.9
        lb = LoadBalancer([hot, cold])
        assert lb.rebalance_once() == []
        assert oref.object_id in hot.servants

    def test_pinned_object_not_moved(self):
        orb, _sim, hot, cold = self.make_world()
        oref = hot.export(Counter(), migratable=False)
        hot.monitor.record_request(oref.object_id, 1.0)
        hot.monitor.busy_fraction.value = 0.9
        cold.monitor.busy_fraction.value = 0.1
        lb = LoadBalancer([hot, cold])
        assert lb.rebalance_once() == []

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            LoadBalancer([], high_water=0.3, low_water=0.5)

    def test_migrate_callback_and_history(self):
        orb, _sim, hot, cold = self.make_world()
        oref = hot.export(Counter())
        hot.monitor.record_request(oref.object_id, 1.0)
        hot.monitor.busy_fraction.value = 0.9
        cold.monitor.busy_fraction.value = 0.1
        seen = []
        lb = LoadBalancer([hot, cold], on_migrate=seen.append)
        events = lb.rebalance_once()
        assert seen == events == lb.history
