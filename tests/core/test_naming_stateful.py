"""Model-based test of the name service against a plain dict."""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

import pytest

from repro.core.naming import NameService
from repro.core.objref import ObjectReference
from repro.exceptions import NameAlreadyBoundError, NameNotFoundError
from repro.idl.types import InterfaceSpec, MethodSpec

NAMES = st.sampled_from(["a", "b", "c", "svc/x", "svc/y"])

_seq = [0]


def fresh_oref() -> ObjectReference:
    _seq[0] += 1
    return ObjectReference(
        object_id=f"obj-{_seq[0]}", context_id="ctx",
        interface=InterfaceSpec("I", {"m": MethodSpec("m")}))


class NamingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.service = NameService()
        self.model = {}

    @rule(name=NAMES)
    def bind(self, name):
        oref = fresh_oref()
        if name in self.model:
            with pytest.raises(NameAlreadyBoundError):
                self.service.bind(name, oref)
        else:
            self.service.bind(name, oref)
            self.model[name] = oref.object_id

    @rule(name=NAMES)
    def rebind(self, name):
        oref = fresh_oref()
        self.service.rebind(name, oref)
        self.model[name] = oref.object_id

    @rule(name=NAMES)
    def resolve(self, name):
        if name in self.model:
            assert self.service.resolve(name).object_id == \
                self.model[name]
        else:
            with pytest.raises(NameNotFoundError):
                self.service.resolve(name)

    @rule(name=NAMES)
    def unbind(self, name):
        if name in self.model:
            self.service.unbind(name)
            del self.model[name]
        else:
            with pytest.raises(NameNotFoundError):
                self.service.unbind(name)

    @invariant()
    def listings_agree(self):
        assert self.service.names() == sorted(self.model)
        assert len(self.service) == len(self.model)


TestNamingModel = NamingMachine.TestCase
TestNamingModel.settings = settings(max_examples=40,
                                    stateful_step_count=50,
                                    deadline=None)
