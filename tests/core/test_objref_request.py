"""Tests for object references, protocol entries, and the request model."""

import numpy as np
import pytest

from repro.core.objref import ObjectReference, ProtocolEntry
from repro.core.request import (
    Invocation,
    decode_invocation,
    decode_reply,
    encode_invocation,
    encode_reply_exception,
    encode_reply_moved,
    encode_reply_ok,
)
from repro.exceptions import MarshalError, ObjectMovedError, RemoteException
from repro.idl.types import InterfaceSpec, MethodSpec
from repro.serialization.marshal import Marshaller, dumps, loads


def sample_interface():
    return InterfaceSpec("Thing", methods={"m": MethodSpec("m")})


def sample_oref():
    return ObjectReference(
        object_id="obj-1", context_id="ctx-1",
        interface=sample_interface(),
        protocols=[
            ProtocolEntry("glue", {"glue_id": "g1", "capabilities": [
                {"type": "quota", "max_calls": 5}],
                "inner": {"proto_id": "nexus", "proto_data": {}},
                "machine": "M1", "lan": "l", "site": "s",
                "addresses": []}),
            ProtocolEntry("shm", {"machine": "M1", "addresses": []}),
            ProtocolEntry("nexus", {"machine": "M1", "addresses": []}),
        ],
        version=3,
    )


class TestProtocolEntry:
    def test_wire_roundtrip(self):
        entry = ProtocolEntry("nexus", {"addresses": [{"a": 1}]})
        assert ProtocolEntry.from_wire(entry.to_wire()).proto_data == \
            entry.proto_data

    def test_clone_is_deep(self):
        entry = ProtocolEntry("nexus", {"addresses": [{"a": 1}]})
        copy = entry.clone()
        copy.proto_data["addresses"][0]["a"] = 2
        assert entry.proto_data["addresses"][0]["a"] == 1


class TestObjectReference:
    def test_bytes_roundtrip(self):
        oref = sample_oref()
        again = ObjectReference.from_bytes(oref.to_bytes())
        assert again.object_id == "obj-1"
        assert again.version == 3
        assert again.proto_ids() == ["glue", "shm", "nexus"]
        assert again.interface.method_names() == ("m",)
        assert again.protocols[0].proto_data["capabilities"][0]["type"] \
            == "quota"

    def test_entry_lookup(self):
        oref = sample_oref()
        assert oref.entry("shm").proto_id == "shm"
        assert oref.entry("nope") is None

    def test_clone_independent(self):
        oref = sample_oref()
        copy = oref.clone()
        copy.protocols.pop(0)
        assert len(oref.protocols) == 3

    def test_bad_bytes_rejected(self):
        with pytest.raises(MarshalError):
            ObjectReference.from_bytes(dumps({"not": "an oref"}))

    def test_marshals_as_value(self):
        """ORs ride the marshaller as first-class values — the mechanism
        that lets capabilities pass between processes (§4)."""
        oref = sample_oref()
        value = {"ref": oref, "note": "enjoy"}
        out = loads(dumps(value))
        assert isinstance(out["ref"], ObjectReference)
        assert out["ref"].proto_ids() == oref.proto_ids()

    def test_marshals_inside_arrays(self):
        out = loads(dumps([sample_oref(), sample_oref()]))
        assert all(isinstance(x, ObjectReference) for x in out)

    def test_uri_roundtrip(self):
        oref = sample_oref()
        uri = oref.to_uri()
        assert uri.startswith("hpcor:")
        again = ObjectReference.from_uri(uri)
        assert again.object_id == oref.object_id
        assert again.proto_ids() == oref.proto_ids()

    def test_uri_wrong_scheme(self):
        with pytest.raises(MarshalError):
            ObjectReference.from_uri("IOR:000102")

    def test_uri_corrupt_payload(self):
        uri = sample_oref().to_uri()
        with pytest.raises(MarshalError):
            ObjectReference.from_uri(uri[:-10] + "!!!madness")

    def test_uri_is_line_safe(self):
        """No whitespace or characters that break shells/files."""
        uri = sample_oref().to_uri()
        assert "\n" not in uri and " " not in uri


class TestInvocationCodec:
    M = Marshaller()

    def test_roundtrip(self):
        inv = Invocation("obj-1", "add", (1, "two", 3.0), oneway=False)
        out = decode_invocation(self.M, encode_invocation(self.M, inv))
        assert out == inv

    def test_array_args(self):
        arr = np.arange(10, dtype=np.int64)
        inv = Invocation("o", "m", (arr,))
        out = decode_invocation(self.M, encode_invocation(self.M, inv))
        np.testing.assert_array_equal(out.args[0], arr)

    def test_oneway_flag(self):
        inv = Invocation("o", "m", (), oneway=True)
        assert decode_invocation(
            self.M, encode_invocation(self.M, inv)).oneway

    def test_malformed_rejected(self):
        bad = self.M.dumps_many([1, 2, [], False])  # ids must be strings
        with pytest.raises(MarshalError):
            decode_invocation(self.M, bad)


class TestReplyCodec:
    M = Marshaller()

    def test_ok(self):
        wire = encode_reply_ok(self.M, {"x": [1, 2]})
        assert decode_reply(self.M, wire) == {"x": [1, 2]}

    def test_ok_none(self):
        assert decode_reply(self.M, encode_reply_ok(self.M, None)) is None

    def test_exception(self):
        wire = encode_reply_exception(self.M, ValueError("boom"))
        with pytest.raises(RemoteException) as err:
            decode_reply(self.M, wire)
        assert err.value.remote_type == "ValueError"
        assert "boom" in str(err.value)

    def test_moved_carries_forward(self):
        oref = sample_oref()
        wire = encode_reply_moved(self.M, oref.to_bytes())
        with pytest.raises(ObjectMovedError) as err:
            decode_reply(self.M, wire)
        assert err.value.forward.object_id == "obj-1"
        assert err.value.forward.version == 3
