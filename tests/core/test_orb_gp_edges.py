"""Edge coverage for ORB and GlobalPointer lifecycles."""

import pytest

from repro.core import ORB
from repro.core.context import Placement
from repro.exceptions import HpcError, TransportError
from repro.simnet import NetworkSimulator, two_machine_lan

from tests.core.conftest import Counter


class TestOrbEdges:
    def test_find_context(self, wall_orb):
        ctx = wall_orb.context("findme")
        assert wall_orb.find_context("findme") is ctx
        with pytest.raises(HpcError):
            wall_orb.find_context("ghost")

    def test_duplicate_context_name(self, wall_orb):
        wall_orb.context("dup")
        with pytest.raises(HpcError):
            wall_orb.context("dup")

    def test_context_manager_shuts_down(self):
        with ORB() as orb:
            ctx = orb.context("cm")
            ctx.export(Counter())
        assert orb.contexts == {}

    def test_machine_without_simulator(self):
        with pytest.raises(HpcError):
            ORB().context("x", machine="M0")

    def test_repr(self, wall_orb):
        wall_orb.context("r1")
        assert "wall-clock" in repr(wall_orb)
        sim_orb = ORB(simulator=NetworkSimulator(two_machine_lan()))
        assert "sim" in repr(sim_orb)


class TestGpEdges:
    def test_update_reference_wrong_object(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        other = server.export(Counter())
        with pytest.raises(HpcError):
            gp.update_reference(other)

    def test_dup_is_deep(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        copy = gp.dup()
        copy.protocols.clear()
        assert gp.oref.protocols

    def test_close_releases_clients(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.invoke("add", 1)
        assert gp._clients
        gp.close()
        assert not gp._clients
        assert gp.closed
        # A closed GP stays closed: invoking raises clearly instead of
        # silently redialing connections the caller believes are gone.
        with pytest.raises(HpcError, match="closed"):
            gp.invoke("get")
        # Re-binding the same OR yields a fresh, working GP.
        assert client.bind(server.export(Counter())).invoke("get") == 0

    def test_gp_pool_is_private_copy(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.pool.disallow("shm")
        assert "shm" in client.proto_pool  # context pool untouched

    def test_binding_empty_table_fails_at_selection(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter())
        oref.protocols.clear()
        gp = client.bind(oref)
        from repro.exceptions import RemoteInvocationError

        with pytest.raises(RemoteInvocationError):
            gp.invoke("get")

    def test_describe_selection_plain(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        assert gp.describe_selection() == "shm"

    def test_repr_mentions_table(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        assert "shm" in repr(gp)


class TestSimShmIsolation:
    def test_sim_shm_refuses_cross_machine(self):
        from repro.transport.simtransport import SimShmTransport

        sim = NetworkSimulator(two_machine_lan())
        ta = SimShmTransport(sim, "A")
        tb = SimShmTransport(sim, "B")
        listener = tb.listen()
        with pytest.raises(TransportError):
            ta.connect(listener.address)

    def test_sim_shm_same_machine_ok(self):
        from repro.transport.simtransport import SimShmTransport

        sim = NetworkSimulator(two_machine_lan())
        t1 = SimShmTransport(sim, "A")
        t2 = SimShmTransport(sim, "A")
        listener = t1.listen()
        channel = t2.connect(listener.address)
        server = listener.accept()
        channel.send(b"local")
        assert server.recv() == b"local"

    def test_network_sim_transport_pays_loopback_tcp(self):
        """Same-machine traffic through the *network* sim transport is
        charged TCP-loopback cost, far above raw shared memory."""
        from repro.simnet.linktypes import SHARED_MEMORY, TCP_LOOPBACK
        from repro.transport.simtransport import (
            SimShmTransport,
            SimTransport,
        )

        sim = NetworkSimulator(two_machine_lan())
        server_t = SimTransport(sim, "A")
        server_t.loopback_model = TCP_LOOPBACK
        listener = server_t.listen()
        # The sending channel's loopback model is what gets charged, so
        # the client transport carries it too (as Context does).
        client_t = SimTransport(sim, "A")
        client_t.loopback_model = TCP_LOOPBACK
        channel = client_t.connect(listener.address)
        listener.accept()
        t0 = sim.clock.now()
        channel.send(b"x" * 100_000)
        tcp_cost = sim.clock.now() - t0
        assert tcp_cost == pytest.approx(
            TCP_LOOPBACK.transfer_time(100_000))
        assert tcp_cost > SHARED_MEMORY.transfer_time(100_000)


class TestContextEdges:
    def test_unexport_then_reexport_same_id(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter(5), object_id="slot")
        gp = client.bind(oref)
        assert gp.invoke("get") == 5
        server.unexport("slot")
        oref2 = server.export(Counter(9), object_id="slot")
        assert client.bind(oref2).invoke("get") == 9

    def test_unexport_removes_glue_stacks(self, wall_pair):
        from repro.core.capabilities import CallQuotaCapability

        server, _client = wall_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(5)]])
        assert server.glue_stacks
        server.unexport(oref.object_id)
        assert not server.glue_stacks

    def test_unknown_cost_kind_rejected(self, sim_world):
        _orb, _sim, _tb, contexts = sim_world
        with pytest.raises(HpcError):
            contexts["s1"].charge_cost("teleport", 100)

    def test_charge_cost_noop_without_sim(self, wall_pair):
        server, _client = wall_pair
        server.charge_cost("cipher", 10_000)  # silently free
