"""Tests for the padding capability."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.capabilities import PaddingCapability, make_capability
from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError

from tests.core.test_capabilities import FakeContext, pair, roundtrip_request


@pytest.fixture
def ctx():
    return FakeContext()


class TestPadding:
    def test_roundtrip(self, ctx):
        c, s = pair(PaddingCapability.quantized(64), ctx)
        out, _meta, wire = roundtrip_request(c, s, b"short")
        assert out == b"short"
        assert len(wire) == 8 + 64  # header + one quantum

    def test_sizes_collapse_to_classes(self, ctx):
        c = make_capability(PaddingCapability.quantized(256), ctx,
                            "client")
        sizes = {len(c.process(b"x" * n, RequestMeta()))
                 for n in (1, 10, 100, 200, 255)}
        assert sizes == {8 + 256}

    def test_quantum_boundaries(self, ctx):
        c = make_capability(PaddingCapability.quantized(16), ctx, "client")
        assert len(c.process(b"x" * 16, RequestMeta())) == 8 + 16
        assert len(c.process(b"x" * 17, RequestMeta())) == 8 + 32

    def test_empty_payload_still_one_quantum(self, ctx):
        c, s = pair(PaddingCapability.quantized(32), ctx)
        out, _meta, wire = roundtrip_request(c, s, b"")
        assert out == b""
        assert len(wire) == 8 + 32

    def test_power2_mode(self, ctx):
        c = make_capability(PaddingCapability.power_of_two(), ctx,
                            "client")
        assert len(c.process(b"x" * 100, RequestMeta())) == 8 + 128
        assert len(c.process(b"x" * 128, RequestMeta())) == 8 + 128
        assert len(c.process(b"x" * 129, RequestMeta())) == 8 + 256

    def test_reply_direction(self, ctx):
        c, s = pair(PaddingCapability.quantized(64), ctx)
        meta = RequestMeta()
        s.unprocess(c.process(b"req", meta), meta)
        assert c.unprocess_reply(s.process_reply(b"reply", meta),
                                 meta) == b"reply"

    def test_corrupt_header_rejected(self, ctx):
        _c, s = pair(PaddingCapability.quantized(64), ctx)
        with pytest.raises(CapabilityError):
            s.unprocess(b"\xff" * 72, RequestMeta())
        with pytest.raises(CapabilityError):
            s.unprocess(b"\x00", RequestMeta())

    def test_bad_descriptor(self, ctx):
        with pytest.raises(CapabilityError):
            make_capability({"type": "padding", "mode": "origami"},
                            ctx, "client")
        with pytest.raises(CapabilityError):
            make_capability({"type": "padding", "quantum": 0},
                            ctx, "client")

    def test_default_applicability(self, ctx):
        c = make_capability(PaddingCapability.quantized(), ctx, "client")
        assert c.applicability == "different-site"

    @given(payload=st.binary(max_size=3000),
           quantum=st.sampled_from([1, 16, 256, 1000]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, payload, quantum):
        ctx = FakeContext()
        c, s = pair(PaddingCapability.quantized(quantum), ctx)
        out, _meta, wire = roundtrip_request(c, s, payload)
        assert out == payload
        assert (len(wire) - 8) % quantum == 0

    def test_stacks_with_encryption(self, ctx):
        """compress-class ordering: pad before encrypt means the
        ciphertext length leaks only the size class."""
        from repro.core.capabilities import EncryptionCapability

        enc_desc = EncryptionCapability.server_descriptor(key_seed=6)
        pad_desc = PaddingCapability.quantized(256)
        c_pad = make_capability(pad_desc, ctx, "client")
        c_enc = make_capability(enc_desc, ctx, "client")
        meta = RequestMeta()
        lengths = set()
        for n in (1, 50, 200):
            wire = c_enc.process(c_pad.process(b"x" * n, meta), meta)
            lengths.add(len(wire))
        assert len(lengths) == 1
