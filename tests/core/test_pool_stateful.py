"""Model-based test of the protocol pool against an ordered-set model."""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

import pytest

from repro.core.proto_pool import ProtocolPool
from repro.exceptions import ProtocolError

IDS = st.sampled_from(["glue", "shm", "nexus", "custom-a", "custom-b"])


class PoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.pool = ProtocolPool()
        self.model = []  # ordered, unique

    @rule(pid=IDS, prefer=st.booleans())
    def allow(self, pid, prefer):
        self.pool.allow(pid, prefer=prefer)
        if pid in self.model:
            if prefer:
                self.model.remove(pid)
                self.model.insert(0, pid)
        elif prefer:
            self.model.insert(0, pid)
        else:
            self.model.append(pid)

    @rule(pid=IDS)
    def disallow(self, pid):
        self.pool.disallow(pid)
        if pid in self.model:
            self.model.remove(pid)

    @rule(data=st.data())
    def reorder(self, data):
        if not self.model:
            return
        permutation = data.draw(st.permutations(self.model))
        self.pool.reorder(permutation)
        self.model = list(permutation)

    @rule(pid=IDS)
    def bad_reorder_rejected(self, pid):
        broken = self.model + [pid] if pid not in self.model \
            else [x for x in self.model if x != pid]
        if sorted(broken) == sorted(self.model):
            return
        with pytest.raises(ProtocolError):
            self.pool.reorder(broken)

    @invariant()
    def order_and_membership_agree(self):
        assert self.pool.ids() == self.model
        assert len(self.pool) == len(self.model)
        for pid in self.model:
            assert pid in self.pool

    @invariant()
    def no_duplicates(self):
        ids = self.pool.ids()
        assert len(set(ids)) == len(ids)


TestPoolModel = PoolMachine.TestCase
TestPoolModel.settings = settings(max_examples=40,
                                  stateful_step_count=50,
                                  deadline=None)
