"""PriorityCapability: a pinned, validated admission class for glue
connections — the class is part of the negotiated contract, not a
per-request claim."""

import pytest

from repro.core.capabilities import PriorityCapability, make_capability
from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError

from tests.core.test_capabilities import FakeContext


@pytest.fixture
def ctx():
    return FakeContext()


def pair(descriptor, ctx):
    return (make_capability(descriptor, ctx, "client"),
            make_capability(descriptor, ctx, "server"))


class TestDescriptor:
    def test_of_builds_descriptor_from_name_or_ordinal(self):
        assert PriorityCapability.of("batch")["class"] == "batch"
        assert PriorityCapability.of(2)["class"] == "best-effort"
        assert PriorityCapability.of(0)["type"] == "priority"

    def test_bad_class_rejected(self, ctx):
        with pytest.raises(CapabilityError):
            make_capability({"type": "priority", "class": "vip"},
                            ctx, "client")


class TestStamping:
    def test_round_trip_sets_meta_class(self, ctx):
        c, s = pair(PriorityCapability.of("batch"), ctx)
        meta = RequestMeta()
        wire = c.process(b"payload", meta)
        assert wire != b"payload"           # class prepended
        assert s.unprocess(wire, meta) == b"payload"
        assert meta.properties["admission.class"] == 1
        assert meta.properties["admission.class_name"] == "batch"

    def test_client_cap_exposes_pinned_class(self, ctx):
        cap = make_capability(PriorityCapability.of("best-effort"),
                              ctx, "client")
        assert cap.admission_class == 2

    def test_escalation_refused(self, ctx):
        """A peer stamping a more urgent class than it negotiated is
        refused — the server half is authoritative."""
        interactive_client = make_capability(
            PriorityCapability.of("interactive"), ctx, "client")
        batch_server = make_capability(
            PriorityCapability.of("batch"), ctx, "server")
        meta = RequestMeta()
        wire = interactive_client.process(b"p", meta)
        with pytest.raises(CapabilityError):
            batch_server.unprocess(wire, meta)

    def test_reply_passes_through(self, ctx):
        c, s = pair(PriorityCapability.of("batch"), ctx)
        meta = RequestMeta()
        s.unprocess(c.process(b"req", meta), meta)
        reply_wire = s.process_reply(b"reply", meta)
        assert c.unprocess_reply(reply_wire, meta) == b"reply"
