"""Edge coverage for protocol clients, glue entry validation, and the
startpoint's reply filtering."""

import pytest

from repro.core.glue import GlueClient, GlueProtocol
from repro.core.objref import ProtocolEntry
from repro.core.protocol import ProtocolClient, marshaller_for
from repro.core.selection import Locality
from repro.exceptions import ProtocolError
from repro.nexus.endpoint import Startpoint
from repro.nexus.rsr import RsrMessage

from tests.core.conftest import Counter


class TestMarshallerFor:
    def test_known_encodings(self):
        assert marshaller_for("xdr") is marshaller_for("xdr")
        assert marshaller_for("cdr") is not marshaller_for("xdr")

    def test_unknown_encoding(self):
        with pytest.raises(ProtocolError):
            marshaller_for("asn1")


class TestGlueEntryValidation:
    def make_context(self, wall_orb):
        return wall_orb.context()

    def test_missing_capabilities(self, wall_orb):
        ctx = self.make_context(wall_orb)
        entry = ProtocolEntry("glue", {
            "glue_id": "g", "inner": {"proto_id": "nexus",
                                      "proto_data": {}}})
        with pytest.raises(ProtocolError):
            GlueClient(entry, ctx)

    def test_missing_inner(self, wall_orb):
        ctx = self.make_context(wall_orb)
        entry = ProtocolEntry("glue", {
            "glue_id": "g",
            "capabilities": [{"type": "quota", "max_calls": 1}]})
        with pytest.raises(ProtocolError):
            GlueClient(entry, ctx)

    def test_missing_glue_id(self, wall_orb):
        ctx = self.make_context(wall_orb)
        entry = ProtocolEntry("glue", {
            "capabilities": [{"type": "quota", "max_calls": 1}],
            "inner": {"proto_id": "nexus", "proto_data": {}}})
        with pytest.raises(ProtocolError):
            GlueClient(entry, ctx)

    def test_unknown_capability_type_never_applicable(self):
        entry = ProtocolEntry("glue", {
            "glue_id": "g",
            "capabilities": [{"type": "wormhole"}],
            "inner": {"proto_id": "nexus", "proto_data": {}}})
        assert not GlueProtocol.applicable(
            entry, Locality(False, False, False), None)

    def test_glue_inherits_inner_applicability(self):
        """A glue whose carrying protocol is shm-only is itself
        inapplicable across machines."""
        entry = ProtocolEntry("glue", {
            "glue_id": "g",
            "capabilities": [{"type": "tracing"}],
            "inner": {"proto_id": "shm", "proto_data": {}}})
        remote = Locality(False, False, False)
        local = Locality(True, True, True)
        assert not GlueProtocol.applicable(entry, remote, None)
        assert GlueProtocol.applicable(entry, local, None)


class ScriptedChannel:
    """Channel whose recv() plays back a queue of messages."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.sent = []
        self.closed = False

    def send(self, data):
        self.sent.append(bytes(data))

    def recv(self, timeout=None):
        return self.replies.pop(0)

    def close(self):
        self.closed = True


class TestStartpointReplyFiltering:
    def test_stale_replies_skipped(self):
        """Replies with a foreign request id are skipped until ours
        arrives (the startpoint's resilience to stale traffic)."""
        from repro.util.ids import IdGenerator

        stale = RsrMessage.reply(10 ** 9, b"stale").encode()
        request_marker = []

        class Chan(ScriptedChannel):
            def send(self, data):
                super().send(data)
                message = RsrMessage.decode(data)
                request_marker.append(message.request_id)
                # Script: one stale reply, then the real one.
                self.replies = [
                    stale,
                    RsrMessage.reply(message.request_id,
                                     b"real").encode(),
                ]

        sp = Startpoint(Chan([]), timeout=1.0)
        assert sp.call("h", b"payload") == b"real"
        assert len(request_marker) == 1

    def test_request_messages_skipped_at_client(self):
        """A stray *request* arriving at a startpoint is not mistaken
        for a reply."""

        class Chan(ScriptedChannel):
            def send(self, data):
                super().send(data)
                message = RsrMessage.decode(data)
                self.replies = [
                    RsrMessage.request(1, "bogus", b"").encode(),
                    RsrMessage.reply(message.request_id, b"ok").encode(),
                ]

        sp = Startpoint(Chan([]), timeout=1.0)
        assert sp.call("h", b"") == b"ok"


class TestProtocolClientConnection:
    def test_empty_address_list(self, wall_pair):
        server, client = wall_pair
        oref = server.export(Counter())
        entry = oref.entry("nexus")
        entry.proto_data["addresses"] = []
        gp = client.bind(oref)
        gp.pool.disallow("shm")
        with pytest.raises(ProtocolError) as err:
            gp.invoke("get")
        assert "empty address list" in str(err.value)

    def test_connection_cached_across_calls(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.invoke("add", 1)
        entry = gp.select_protocol()
        proto_client = gp._client_for(entry)
        sp_before = proto_client._startpoint
        gp.invoke("add", 1)
        assert proto_client._startpoint is sp_before
