"""Overload pushback, client side: the PushbackRegistry, and the GP's
treatment of `OverloadError` as throttle-not-failure (no breaker
strike, stretched backoff, suppressed hedging)."""

import pytest

from repro.core import ORB
from repro.core.instrumentation import HookBus
from repro.core.protocol import ProtocolClient
from repro.core.resilience import (
    BreakerState,
    HedgePolicy,
    PushbackRegistry,
    RetryPolicy,
)
from repro.exceptions import OverloadError, RetryExhaustedError
from repro.simnet.clock import VirtualClock

from tests.core.test_resilience import Register


class TestPushbackRegistry:
    def test_note_and_remaining(self):
        clock = VirtualClock()
        reg = PushbackRegistry(clock)
        reg.note("peer", 0.5)
        assert reg.active("peer")
        assert reg.remaining("peer") == pytest.approx(0.5)
        clock.advance(0.3)
        assert reg.remaining("peer") == pytest.approx(0.2)
        clock.advance(0.3)
        assert not reg.active("peer")
        assert reg.remaining("peer") == 0.0

    def test_notes_only_extend(self):
        clock = VirtualClock()
        reg = PushbackRegistry(clock)
        reg.note("peer", 0.5)
        reg.note("peer", 0.1)          # shorter hint must not shrink
        assert reg.remaining("peer") == pytest.approx(0.5)
        reg.note("peer", 0.9)
        assert reg.remaining("peer") == pytest.approx(0.9)

    def test_nonpositive_hints_ignored(self):
        reg = PushbackRegistry(VirtualClock())
        reg.note("peer", 0.0)
        reg.note("peer", -1.0)
        assert not reg.active("peer")
        assert reg.notes == 0

    def test_snapshot_lists_active_peers_only(self):
        clock = VirtualClock()
        reg = PushbackRegistry(clock)
        reg.note("a", 0.5)
        reg.note("b", 0.1)
        clock.advance(0.2)
        snap = reg.snapshot()
        assert "a" in snap and "b" not in snap


def overloading_invoke(times, retry_after=0.2):
    """Patch-ready ProtocolClient.invoke: push back ``times`` times,
    then delegate to the real implementation."""
    real = ProtocolClient.invoke
    state = {"left": times, "overloads": 0}

    def invoke(self, invocation):
        if state["left"] > 0:
            state["left"] -= 1
            state["overloads"] += 1
            raise OverloadError("server saturated",
                                retry_after=retry_after,
                                reason="queue_full")
        return real(self, invocation)

    return invoke, state


class TestGlobalPointerUnderPushback:
    @pytest.fixture
    def world(self):
        orb = ORB()
        server = orb.context("server")
        client = orb.context("client")
        gp = client.bind(server.export(Register()),
                         retry_policy=RetryPolicy(
                             max_attempts=5, base_backoff=0.001,
                             jitter=0.0, seed=3))
        yield orb, server, client, gp
        orb.shutdown()

    def test_overload_retried_and_recovered(self, world, monkeypatch):
        _orb, server, client, gp = world
        invoke, state = overloading_invoke(times=2)
        monkeypatch.setattr(ProtocolClient, "invoke", invoke)
        events = []
        gp.hooks.on("retry", lambda e: events.append(e.data))
        assert gp.invoke("put", 7) == 7
        assert state["overloads"] == 2
        # backoff honoured the server's hint: never sooner than 0.2
        assert all(e["backoff"] >= 0.2 for e in events)

    def test_no_breaker_strike_on_pushback(self, world, monkeypatch):
        _orb, server, client, gp = world
        invoke, _state = overloading_invoke(times=2)
        monkeypatch.setattr(ProtocolClient, "invoke", invoke)
        gp.invoke("put", 1)
        breaker = client.breakers.get(server.id, "nexus")
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failures == 0

    def test_pushback_noted_context_wide(self, world, monkeypatch):
        _orb, server, client, gp = world
        invoke, _state = overloading_invoke(times=1, retry_after=0.02)
        monkeypatch.setattr(ProtocolClient, "invoke", invoke)
        assert client.pushback.notes == 0
        gp.invoke("put", 2)
        # the hint was recorded on the *context's* registry, where every
        # GP bound to the same peer consults it (the GP slept out the
        # retry-after before succeeding, so it is no longer active)
        assert client.pushback.notes == 1
        assert not client.pushback.active(server.id)

    def test_no_failover_events_on_pushback(self, world, monkeypatch):
        """Pushback must not demote the entry — there is no healthier
        protocol to fail over to, the server itself is saturated."""
        _orb, _server, _client, gp = world
        invoke, _state = overloading_invoke(times=2)
        monkeypatch.setattr(ProtocolClient, "invoke", invoke)
        failovers = []
        gp.hooks.on("failover", lambda e: failovers.append(e))
        gp.invoke("put", 3)
        assert failovers == []

    def test_sustained_overload_exhausts_retries(self, world, monkeypatch):
        _orb, _server, _client, gp = world
        invoke, state = overloading_invoke(times=10 ** 6,
                                           retry_after=0.001)
        monkeypatch.setattr(ProtocolClient, "invoke", invoke)
        with pytest.raises(RetryExhaustedError):
            gp.invoke("put", 4)
        assert state["overloads"] == 5      # max_attempts, no more

    def test_hedging_suppressed_while_pushback_active(self, world):
        _orb, server, client, gp = world
        gp.hedge_policy = HedgePolicy(enabled=True, min_samples=1)
        # the policy *would* govern this retry-safe call...
        oref = gp._snapshot()
        assert gp._hedge_policy_for(oref, "put", False) is not None
        hedges = []
        gp.hooks.on("hedge", lambda e: hedges.append(e))
        for v in range(5):
            gp.invoke("put", v)             # trains the latency tracker
        # ...but while the peer's pushback window is open, no hedge
        # leg may launch: racing a second request at a saturated
        # server amplifies exactly the load it asked us to shed.
        client.pushback.note(server.id, 60.0)
        for v in range(20):
            gp.invoke("put", v)
        assert client.pushback.active(server.id)
        assert hedges == []
