"""Resilient invocation: retry policy, circuit breakers, and the GP's
recovery loop under deterministic fault injection."""

import pytest

from repro.core.instrumentation import HookBus
from repro.core.resilience import (
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
    sleep_on,
)
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    DeliveryError,
    RetryExhaustedError,
)
from repro.faults import FaultPlan, FaultyTransport
from repro.idl import remote_interface, remote_method
from repro.simnet.clock import VirtualClock

from tests.core.conftest import Counter


@remote_interface("Register")
class Register:
    """Idempotent store: ``put`` is safe to auto-retry even after the
    request may have reached dispatch."""

    def __init__(self):
        self.value = 0
        self.calls = 0

    @remote_method(retry_safe=True)
    def put(self, v: int) -> int:
        self.calls += 1
        self.value = v
        return self.value

    @remote_method
    def get(self) -> int:
        return self.value


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0,
                             max_backoff=0.5, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(9) == pytest.approx(0.5)

    def test_jitter_is_seeded_and_bounded(self):
        a = [RetryPolicy(seed=7).backoff(n) for n in range(1, 6)]
        b = [RetryPolicy(seed=7).backoff(n) for n in range(1, 6)]
        c = [RetryPolicy(seed=8).backoff(n) for n in range(1, 6)]
        assert a == b                 # same seed, same schedule
        assert a != c                 # different seed diverges
        plain = RetryPolicy(jitter=0.0)
        for n, jittered in enumerate(a, start=1):
            base = plain.backoff(n)
            assert base <= jittered <= base * 1.25


class TestSleepOn:
    def test_virtual_clock_advances_instantly(self):
        clock = VirtualClock()
        sleep_on(clock, 123.0)
        assert clock.now() == pytest.approx(123.0)

    def test_non_positive_is_noop(self):
        clock = VirtualClock()
        sleep_on(clock, 0.0)
        sleep_on(clock, -1.0)
        assert clock.now() == 0.0


class TestCircuitBreaker:
    def test_threshold_opens(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=3, cooldown=10.0)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_cooldown_half_opens(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_failure_reopens(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.record_failure() is True   # re-opened
        assert not breaker.allow()                # cooldown restarted

    def test_half_open_success_closes(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        assert breaker.record_success() is True
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_success_resets_failure_count(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED


class TestBreakerRegistry:
    def test_unknown_pair_allows(self):
        registry = BreakerRegistry(VirtualClock(), hooks=HookBus())
        assert registry.allow("ctx", "nexus")
        assert registry.state("ctx", "nexus") is BreakerState.CLOSED

    def test_open_event_emitted(self):
        bus = HookBus()
        events = []
        bus.on("breaker_open", lambda e: events.append(e.data))
        registry = BreakerRegistry(VirtualClock(), failure_threshold=2,
                                   hooks=bus)
        registry.record_failure("ctx", "nexus")
        registry.record_failure("ctx", "nexus")
        assert not registry.allow("ctx", "nexus")
        assert events[0]["context_id"] == "ctx"
        assert events[0]["proto_id"] == "nexus"
        assert registry.open_protos("ctx") == ["nexus"]
        assert registry.open_keys() == ["ctx:nexus"]

    def test_close_event_emitted(self):
        bus = HookBus()
        events = []
        bus.on("breaker_close", lambda e: events.append(e.data))
        clock = VirtualClock()
        registry = BreakerRegistry(clock, failure_threshold=1,
                                   cooldown=1.0, hooks=bus)
        registry.record_failure("ctx", "shm")
        clock.advance(1.0)
        assert registry.allow("ctx", "shm")       # half-open probe
        registry.record_success("ctx", "shm")
        assert events == [{"context_id": "ctx", "proto_id": "shm"}]

    def test_probe_feeds_only_existing_breakers(self):
        registry = BreakerRegistry(VirtualClock(), failure_threshold=1,
                                   hooks=HookBus())
        registry.record_probe("ctx", alive=False)   # no breakers yet
        assert registry.open_keys() == []
        registry.get("ctx", "nexus")
        registry.record_probe("ctx", alive=False)
        assert registry.open_keys() == ["ctx:nexus"]
        registry.record_probe("other", alive=False)  # different context
        assert registry.open_keys() == ["ctx:nexus"]


class TestResilientInvocation:
    """GP recovery behaviour in the simulated world (client on M0,
    servant on M1, so only the ``nexus`` entry applies)."""

    def _bind(self, sim_world, servant, **gp_kwargs):
        _orb, sim, _tb, contexts = sim_world
        oref = contexts["s1"].export(servant)
        gp = contexts["client"].bind(oref, **gp_kwargs)
        kinds = []
        for kind in ("retry", "failover"):
            gp.hooks.on(kind, lambda e, k=kind: kinds.append(k))
        gp.hooks.on("request",
                    lambda e: kinds.append(f"request:{e.data['outcome']}"))
        return sim, contexts, gp, kinds

    def test_transient_request_drop_is_retried(self, sim_world):
        """A request that provably never left this host is retried even
        for a non-retry-safe method — and executes exactly once."""
        servant = Counter()
        _orb, _sim, _tb, contexts = sim_world
        client = contexts["client"]
        plan = FaultPlan(seed=1, hooks=HookBus())
        # Two send-drops: the first is absorbed by the client's
        # transparent reconnect, the second escalates to the GP retry
        # loop.  The third send goes through.
        plan.drop(label="sim", point="send", count=2)
        client.transports["sim"] = FaultyTransport(
            client.transports["sim"], plan, clock=client.clock)
        oref = contexts["s1"].export(servant)
        gp = client.bind(oref)
        kinds = []
        gp.hooks.on("retry", lambda e: kinds.append("retry"))
        gp.hooks.on("request",
                    lambda e: kinds.append(f"request:{e.data['outcome']}"))
        assert gp.invoke("add", 1) == 1
        assert servant.n == 1               # the drops never reached it
        assert kinds == ["request:error", "retry", "request:ok"]
        assert plan.injected == [("drop", "sim:send")] * 2

    def test_reply_loss_blocks_unsafe_retry(self, sim_world):
        """A lost *reply* means the method already ran; a non-idempotent
        method must not be silently re-executed."""
        servant = Counter()
        sim, contexts, gp, _kinds = self._bind(sim_world, servant)
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="M1", dst="M0", count=1)
        sim.fault_plan = plan
        with pytest.raises(DeliveryError) as err:
            gp.invoke("add", 1)
        assert getattr(err.value, "request_dispatched", False)
        assert servant.n == 1               # ran exactly once

    def test_reply_loss_retried_when_marked_safe(self, sim_world):
        servant = Register()
        sim, _contexts, gp, kinds = self._bind(sim_world, servant)
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="M1", dst="M0", count=1)
        sim.fault_plan = plan
        assert gp.invoke("put", 9) == 9
        assert servant.calls == 2           # re-executed: marked safe
        assert servant.value == 9
        assert kinds == ["request:error", "retry", "request:ok"]

    def test_retry_unsafe_policy_overrides_guard(self, sim_world):
        servant = Counter()
        sim, _contexts, gp, _kinds = self._bind(
            sim_world, servant,
            retry_policy=RetryPolicy(retry_unsafe=True))
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="M1", dst="M0", count=1)
        sim.fault_plan = plan
        assert gp.invoke("add", 1) == 2     # ran twice, caller opted in
        assert servant.n == 2

    def test_retry_exhausted_carries_attempt_trail(self, sim_world):
        servant = Register()
        sim, _contexts, gp, _kinds = self._bind(sim_world, servant)
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="M1", dst="M0")       # every reply, forever
        sim.fault_plan = plan
        with pytest.raises(RetryExhaustedError) as err:
            gp.invoke("put", 1)
        attempts = err.value.attempts
        assert [a.attempt for a in attempts] == [1, 2, 3]
        assert {a.proto_id for a in attempts} == {"nexus"}
        assert all(a.dispatched for a in attempts)
        assert servant.calls == 3

    def test_deadline_bounds_the_whole_call(self, sim_world):
        servant = Register()
        sim, contexts, gp, _kinds = self._bind(
            sim_world, servant,
            retry_policy=RetryPolicy(max_attempts=10, base_backoff=1.0,
                                     jitter=0.0, deadline=2.5))
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="M1", dst="M0")
        sim.fault_plan = plan
        t0 = contexts["client"].clock.now()
        with pytest.raises(DeadlineExceededError) as err:
            gp.invoke("put", 1)
        assert len(err.value.attempts) < 10   # budget did not run out
        # The refusal happens *before* sleeping past the deadline.
        assert contexts["client"].clock.now() - t0 <= 2.5

    def test_failed_client_is_evicted(self, sim_world):
        """Satellite bugfix: a TransportError must drop the cached
        client so the next attempt redials instead of reusing a dead
        channel."""
        servant = Register()
        sim, _contexts, gp, _kinds = self._bind(sim_world, servant)
        plan = FaultPlan(hooks=HookBus())
        rule = plan.drop(src="M1", dst="M0")
        sim.fault_plan = plan
        with pytest.raises(RetryExhaustedError):
            gp.invoke("put", 1)
        assert gp._clients == {}            # nothing stale cached
        rule.count = rule.fired             # heal: rule is exhausted
        assert gp.invoke("put", 4) == 4     # fresh dial succeeds

    def test_breaker_trips_then_recovers(self, sim_world):
        servant = Register()
        sim, contexts, gp, _kinds = self._bind(sim_world, servant)
        bus = HookBus()
        transitions = []
        bus.on("breaker_open", lambda e: transitions.append("open"))
        bus.on("breaker_close", lambda e: transitions.append("close"))
        clock = contexts["client"].clock
        gp.breakers = BreakerRegistry(clock, failure_threshold=1,
                                      cooldown=60.0, hooks=bus)
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="M1", dst="M0")
        sim.fault_plan = plan
        with pytest.raises(CircuitOpenError) as err:
            gp.invoke("put", 1)
        assert "nexus" in str(err.value)
        assert err.value.attempts           # trail survived the trip
        assert gp.breakers.state("s1", "nexus") is BreakerState.OPEN

        # While open, selection refuses without touching the network.
        calls_before = servant.calls
        with pytest.raises(CircuitOpenError):
            gp.invoke("put", 2)
        assert servant.calls == calls_before

        # Cooldown elapses, the fault heals: half-open probe succeeds.
        sim.fault_plan = None
        clock.advance(60.0)
        assert gp.invoke("put", 3) == 3
        assert gp.breakers.state("s1", "nexus") is BreakerState.CLOSED
        assert transitions == ["open", "close"]

    def test_open_breakers_visible_in_describe(self, sim_world):
        servant = Register()
        _orb, sim, _tb, contexts = sim_world
        client = contexts["client"]
        client.breakers = BreakerRegistry(client.clock,
                                          failure_threshold=1,
                                          cooldown=60.0, hooks=HookBus())
        oref = contexts["s1"].export(servant)
        gp = client.bind(oref)
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="M1", dst="M0")
        sim.fault_plan = plan
        with pytest.raises(CircuitOpenError):
            gp.invoke("put", 1)
        assert client.describe()["breakers_open"] == ["s1:nexus"]


class TestPenaltyBox:
    """Sticky per-row demotion: a failed table entry is skipped by
    selection for ``penalty_seconds``.  Breakers can't do this in a
    merged replica table (every row shares a proto_id, so one key would
    shed them all); the penalty box isolates exactly the dead row."""

    def _merged_gp(self, sim_world, **gp_kwargs):
        from repro.cluster.procs import merge_orefs

        _orb, sim, _tb, contexts = sim_world
        r1, r2 = Register(), Register()
        o1 = contexts["s1"].export(r1, object_id="reg")
        o2 = contexts["s2"].export(r2, object_id="reg")
        gp = contexts["client"].bind(merge_orefs([o1, o2]), **gp_kwargs)
        kinds = []
        gp.hooks.on("failover", lambda e: kinds.append("failover"))
        gp.hooks.on("request",
                    lambda e: kinds.append(f"request:{e.data['outcome']}"))
        return sim, contexts, gp, r1, r2, kinds

    def test_failed_replica_row_is_skipped_until_ttl(self, sim_world):
        sim, contexts, gp, r1, r2, kinds = self._merged_gp(sim_world)
        clock = contexts["client"].clock
        plan = FaultPlan(hooks=HookBus())
        rule = plan.drop(dst="M1")          # s1's machine is unreachable
        sim.fault_plan = plan

        # First call pays one failed attempt, then fails over to s2.
        assert gp.invoke("put", 1) == 1
        assert r2.value == 1 and r1.calls == 0
        assert "failover" in kinds
        assert kinds.count("request:error") == 1

        # While the penalty is live, calls go straight to s2 — the dead
        # row is not probed at all.
        kinds.clear()
        for v in (2, 3, 4):
            assert gp.invoke("put", v) == v
        assert kinds == ["request:ok"] * 3
        assert r2.calls == 4

        # TTL lapses and the fault heals: the row is probed again and a
        # success clears the penalty.
        rule.count = rule.fired             # heal
        sim.fault_plan = None
        clock.advance(gp.penalty_seconds + 0.1)
        assert gp.invoke("put", 5) == 5
        assert r1.calls == 1                # traffic is back on s1
        assert not gp._penalties

    def test_fully_penalized_table_still_selects(self, sim_world):
        """When every row is in the box, selection ignores penalties
        rather than failing a call that plain retry would have saved."""
        _sim, contexts, gp, r1, _r2, _kinds = self._merged_gp(sim_world)
        for entry in gp.oref.protocols:
            gp._penalize(entry)
        assert gp.invoke("put", 7) == 7
        assert r1.value == 7                # first row, as without box

    def test_update_reference_clears_penalties(self, sim_world):
        _sim, _contexts, gp, _r1, _r2, _kinds = self._merged_gp(sim_world)
        gp._penalize(gp.oref.protocols[0])
        assert gp._penalties
        gp.update_reference(gp.oref.clone())
        assert gp._penalties == {}
