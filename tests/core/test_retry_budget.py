"""Shared per-peer retry budgets: token-bucket unit behaviour and the
flapping-peer amplification bound (the tentpole acceptance scenario:
total retries across 20 concurrent ``invoke_async`` calls are bounded by
the context's shared :class:`RetryBudget`, not by 20x the per-GP
``max_attempts``)."""

import pytest

from repro.core import ORB
from repro.core.instrumentation import HookBus
from repro.core.resilience import (
    BreakerRegistry,
    RetryBudget,
    RetryBudgetRegistry,
)
from repro.exceptions import (
    RetryBudgetExhaustedError,
    RetryExhaustedError,
)
from repro.faults import FaultPlan
from repro.simnet import NetworkSimulator, paper_testbed

from tests.core.test_resilience import Register


class TestRetryBudgetUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(max_tokens=0)
        with pytest.raises(ValueError):
            RetryBudget(deposit_per_call=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(withdraw_per_retry=0)

    def test_starts_full_and_deposits_cap(self):
        budget = RetryBudget(max_tokens=2.0, deposit_per_call=0.5)
        assert budget.tokens == 2.0
        budget.deposit()
        assert budget.tokens == 2.0          # capped, not 2.5
        assert budget.deposits == 1

    def test_withdraw_until_refused(self):
        budget = RetryBudget(max_tokens=2.0, deposit_per_call=0.0,
                             withdraw_per_retry=1.0)
        assert budget.try_withdraw()
        assert budget.try_withdraw()
        assert not budget.try_withdraw()     # bucket empty
        assert budget.withdrawals == 2
        assert budget.refusals == 1
        assert budget.tokens == 0.0

    def test_deposits_refill_slowly(self):
        budget = RetryBudget(max_tokens=5.0, deposit_per_call=0.5)
        for _ in range(5):
            assert budget.try_withdraw()
        assert not budget.try_withdraw()
        budget.deposit()                     # 0.5: still refused
        assert not budget.try_withdraw()
        budget.deposit()                     # 1.0: one retry affordable
        assert budget.try_withdraw()

    def test_registry_is_per_peer(self):
        registry = RetryBudgetRegistry(max_tokens=3.0)
        a = registry.get("peer-a")
        assert registry.get("peer-a") is a   # shared across callers
        b = registry.get("peer-b")
        assert b is not a                    # but isolated per peer
        a.try_withdraw()
        snap = registry.snapshot()
        assert snap == {"peer-a": 2.0, "peer-b": 3.0}

    def test_budget_error_is_a_retry_exhausted_error(self):
        # Existing handlers that catch RetryExhaustedError keep working.
        assert issubclass(RetryBudgetExhaustedError, RetryExhaustedError)


def _flapping_fanout(calls: int = 20):
    """Run ``calls`` async invocations against a peer that drops every
    reply, with breakers effectively disabled so the *budget* is the
    only thing bounding retries.  Returns the deterministic outcome."""
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    try:
        client = orb.context("client", machine=tb.m0)
        s1 = orb.context("s1", machine=tb.m1)
        servant = Register()
        gp = client.bind(
            s1.export(servant),
            breakers=BreakerRegistry(client.clock,
                                     failure_threshold=10**6,
                                     hooks=HookBus()))
        retries = []
        exhaustions = []
        gp.hooks.on("retry", lambda e: retries.append(e.data["attempt"]))
        gp.hooks.on("budget_exhausted",
                    lambda e: exhaustions.append(e.data))
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="M1", dst="M0")        # every reply, forever
        sim.fault_plan = plan
        futures = [gp.invoke_async("put", i) for i in range(calls)]
        errors = [type(f.exception()).__name__ for f in futures]
        budget = client.retry_budgets.get("s1")
        return {
            "errors": tuple(errors),
            "retries": len(retries),
            "withdrawals": budget.withdrawals,
            "refusals": budget.refusals,
            "servant_calls": servant.calls,
            "exhaustion_events": len(exhaustions),
            "tokens_left": budget.tokens,
        }
    finally:
        orb.shutdown()


class TestSharedBudgetUnderFanout:
    def test_fanout_retries_bounded_by_shared_budget(self):
        out = _flapping_fanout(calls=20)
        # Unbudgeted, 20 calls x (max_attempts=3) would retry 40 times
        # and execute the servant 60 times.  The shared bucket (10
        # tokens, 0.1 deposit/call) bounds amplification to roughly the
        # burst allowance.
        assert out["retries"] == out["withdrawals"]
        assert out["retries"] <= 12          # not 40
        assert out["servant_calls"] <= 2 * 20    # not 60
        assert out["refusals"] >= 10
        assert out["exhaustion_events"] == out["refusals"]
        # Every call failed, split between "my own attempts ran out"
        # and "the shared budget refused to amplify further".
        assert set(out["errors"]) == {"RetryExhaustedError",
                                      "RetryBudgetExhaustedError"}
        assert out["errors"][0] == "RetryExhaustedError"
        assert out["errors"][-1] == "RetryBudgetExhaustedError"

    def test_fanout_outcome_is_deterministic(self):
        assert _flapping_fanout(calls=20) == _flapping_fanout(calls=20)

    def test_budget_error_carries_attempt_trail(self):
        tb = paper_testbed()
        sim = NetworkSimulator(tb.topology)
        orb = ORB(simulator=sim)
        try:
            client = orb.context("client", machine=tb.m0)
            s1 = orb.context("s1", machine=tb.m1)
            # A bucket that cannot afford even one retry.
            client.retry_budgets = RetryBudgetRegistry(
                max_tokens=0.5, deposit_per_call=0.0)
            gp = client.bind(s1.export(Register()))
            plan = FaultPlan(hooks=HookBus())
            plan.drop(src="M1", dst="M0")
            sim.fault_plan = plan
            with pytest.raises(RetryBudgetExhaustedError) as err:
                gp.invoke("put", 1)
            assert [a.attempt for a in err.value.attempts] == [1]
            assert "s1" in str(err.value)
        finally:
            orb.shutdown()

    def test_successful_calls_never_touch_the_budget(self):
        tb = paper_testbed()
        sim = NetworkSimulator(tb.topology)
        orb = ORB(simulator=sim)
        try:
            client = orb.context("client", machine=tb.m0)
            s1 = orb.context("s1", machine=tb.m1)
            gp = client.bind(s1.export(Register()))
            for i in range(5):
                assert gp.invoke("put", i) == i
            budget = client.retry_budgets.get("s1")
            assert budget.deposits == 5
            assert budget.withdrawals == 0
            assert budget.refusals == 0
            assert client.describe()["retry_budgets"] == {"s1": 10.0}
        finally:
            orb.shutdown()
