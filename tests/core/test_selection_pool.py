"""Tests for protocol pools, applicability rules, and selection policies."""

import pytest

from repro.core.objref import ProtocolEntry
from repro.core.proto_pool import ProtocolPool
from repro.core.selection import (
    APPLICABILITY_RULES,
    FirstMatchPolicy,
    Locality,
    PoolOrderPolicy,
    register_applicability_rule,
    rule_applies,
)
from repro.exceptions import (
    NoApplicableProtocolError,
    ProtocolError,
)

SAME_MACHINE = Locality(True, True, True)
SAME_LAN = Locality(False, True, True)
SAME_SITE = Locality(False, False, True)
REMOTE = Locality(False, False, False)


class TestLocality:
    def test_nesting_enforced(self):
        with pytest.raises(ValueError):
            Locality(True, False, True)
        with pytest.raises(ValueError):
            Locality(False, True, False)

    @pytest.mark.parametrize("text,expected", [
        ("same-machine", SAME_MACHINE),
        ("same-lan", SAME_LAN),
        ("same-site", SAME_SITE),
        ("remote", REMOTE),
    ])
    def test_from_string(self, text, expected):
        assert Locality.from_string(text) == expected

    def test_from_string_unknown(self):
        with pytest.raises(ValueError):
            Locality.from_string("nearby")


class TestRules:
    def test_builtin_rules_cover_figure4(self):
        """The rule outcomes that drive the Figure 4 stage sequence."""
        # Stage 1: remote — both capabilities applicable.
        assert rule_applies("different-site", REMOTE)
        assert rule_applies("different-lan", REMOTE)
        # Stage 2: same site, different LAN — only the quota applies.
        assert not rule_applies("different-site", SAME_SITE)
        assert rule_applies("different-lan", SAME_SITE)
        # Stage 3: same LAN — neither capability, nor shared memory.
        assert not rule_applies("different-lan", SAME_LAN)
        assert not rule_applies("same-machine", SAME_LAN)
        # Stage 4: same machine — shared memory wins.
        assert rule_applies("same-machine", SAME_MACHINE)

    def test_always_never(self):
        for loc in (SAME_MACHINE, REMOTE):
            assert rule_applies("always", loc)
            assert not rule_applies("never", loc)

    def test_unknown_rule(self):
        with pytest.raises(ProtocolError):
            rule_applies("bogus", REMOTE)

    def test_register_custom_rule(self):
        register_applicability_rule(
            "test-lan-only", lambda loc: loc.same_lan and not
            loc.same_machine, replace=True)
        try:
            assert rule_applies("test-lan-only", SAME_LAN)
            assert not rule_applies("test-lan-only", SAME_MACHINE)
        finally:
            APPLICABILITY_RULES.pop("test-lan-only", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_applicability_rule("always", lambda loc: True)


class TestProtocolPool:
    def test_order_preserved(self):
        pool = ProtocolPool(["glue", "shm", "nexus"])
        assert pool.ids() == ["glue", "shm", "nexus"]

    def test_allow_idempotent(self):
        pool = ProtocolPool(["a"])
        pool.allow("a")
        assert pool.ids() == ["a"]

    def test_allow_prefer(self):
        pool = ProtocolPool(["a", "b"])
        pool.allow("c", prefer=True)
        assert pool.ids() == ["c", "a", "b"]
        pool.allow("b", prefer=True)
        assert pool.ids() == ["b", "c", "a"]

    def test_disallow(self):
        pool = ProtocolPool(["a", "b"])
        pool.disallow("a")
        pool.disallow("missing")  # no error
        assert pool.ids() == ["b"]
        assert "a" not in pool

    def test_reorder(self):
        pool = ProtocolPool(["a", "b", "c"])
        pool.reorder(["c", "a", "b"])
        assert pool.ids() == ["c", "a", "b"]

    def test_reorder_must_be_permutation(self):
        pool = ProtocolPool(["a", "b"])
        with pytest.raises(ProtocolError):
            pool.reorder(["a"])
        with pytest.raises(ProtocolError):
            pool.reorder(["a", "b", "c"])

    def test_clone_independent(self):
        pool = ProtocolPool(["a"])
        copy = pool.clone()
        copy.allow("b")
        assert pool.ids() == ["a"]

    def test_empty_id_rejected(self):
        with pytest.raises(ProtocolError):
            ProtocolPool([""])

    def test_iteration_and_len(self):
        pool = ProtocolPool(["a", "b"])
        assert list(pool) == ["a", "b"]
        assert len(pool) == 2


def entries(*pids):
    return [ProtocolEntry(p, {}) for p in pids]


class TestFirstMatchPolicy:
    def test_or_order_wins(self):
        policy = FirstMatchPolicy()
        chosen = policy.select(entries("glue", "shm", "nexus"),
                               ["nexus", "shm", "glue"], REMOTE,
                               lambda e: True)
        assert chosen.proto_id == "glue"

    def test_pool_membership_filters(self):
        policy = FirstMatchPolicy()
        chosen = policy.select(entries("glue", "nexus"),
                               ["nexus"], REMOTE, lambda e: True)
        assert chosen.proto_id == "nexus"

    def test_applicability_filters(self):
        policy = FirstMatchPolicy()
        chosen = policy.select(entries("shm", "nexus"),
                               ["shm", "nexus"], REMOTE,
                               lambda e: e.proto_id != "shm")
        assert chosen.proto_id == "nexus"

    def test_no_match_raises_with_detail(self):
        policy = FirstMatchPolicy()
        with pytest.raises(NoApplicableProtocolError) as err:
            policy.select(entries("shm"), ["nexus"], REMOTE,
                          lambda e: True)
        assert "not in pool" in str(err.value)

    def test_empty_table(self):
        with pytest.raises(NoApplicableProtocolError):
            FirstMatchPolicy().select([], ["nexus"], REMOTE,
                                      lambda e: True)


class TestPoolOrderPolicy:
    def test_pool_order_wins(self):
        policy = PoolOrderPolicy()
        chosen = policy.select(entries("glue", "shm", "nexus"),
                               ["nexus", "glue"], REMOTE, lambda e: True)
        assert chosen.proto_id == "nexus"

    def test_applicability_respected(self):
        policy = PoolOrderPolicy()
        chosen = policy.select(entries("shm", "nexus"),
                               ["shm", "nexus"], REMOTE,
                               lambda e: e.proto_id != "shm")
        assert chosen.proto_id == "nexus"

    def test_no_match(self):
        with pytest.raises(NoApplicableProtocolError):
            PoolOrderPolicy().select(entries("glue"), ["nexus"], REMOTE,
                                     lambda e: True)
