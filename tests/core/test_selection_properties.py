"""Property-based tests of protocol selection and locality.

Invariants, over random tables/pools/localities:

* anything selected is in the pool AND applicable;
* first-match returns the *earliest* such entry;
* selection is deterministic;
* locality relations nest (machine ⊂ LAN ⊂ site) and are symmetric.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.context import Placement
from repro.core.objref import ProtocolEntry
from repro.core.selection import (
    FirstMatchPolicy,
    Locality,
    PoolOrderPolicy,
    rule_applies,
)
from repro.exceptions import NoApplicableProtocolError

PROTO_IDS = ["glue", "shm", "nexus", "custom-a", "custom-b"]
RULES = ["always", "never", "same-machine", "same-lan", "same-site",
         "different-machine", "different-lan", "different-site"]

locality_strategy = st.sampled_from([
    Locality(True, True, True),
    Locality(False, True, True),
    Locality(False, False, True),
    Locality(False, False, False),
])

entry_strategy = st.builds(
    lambda pid, rule: ProtocolEntry(pid, {"applicability": rule}),
    st.sampled_from(PROTO_IDS), st.sampled_from(RULES))

table_strategy = st.lists(entry_strategy, min_size=0, max_size=8)
pool_strategy = st.lists(st.sampled_from(PROTO_IDS), min_size=0,
                         max_size=5, unique=True)


def applicable(entry, locality):
    return rule_applies(entry.proto_data["applicability"], locality)


class TestSelectionProperties:
    @given(table=table_strategy, pool=pool_strategy,
           locality=locality_strategy)
    def test_first_match_soundness(self, table, pool, locality):
        policy = FirstMatchPolicy()
        pred = lambda e: applicable(e, locality)
        try:
            chosen = policy.select(table, pool, locality, pred)
        except NoApplicableProtocolError:
            # Completeness: no entry was eligible.
            assert not any(e.proto_id in pool and pred(e) for e in table)
            return
        # Soundness: eligible...
        assert chosen.proto_id in pool and pred(chosen)
        # ...and earliest.
        index = table.index(chosen)
        for earlier in table[:index]:
            assert not (earlier.proto_id in pool and pred(earlier))

    @given(table=table_strategy, pool=pool_strategy,
           locality=locality_strategy)
    def test_pool_order_soundness(self, table, pool, locality):
        policy = PoolOrderPolicy()
        pred = lambda e: applicable(e, locality)
        try:
            chosen = policy.select(table, pool, locality, pred)
        except NoApplicableProtocolError:
            assert not any(e.proto_id in pool and pred(e) for e in table)
            return
        assert chosen.proto_id in pool and pred(chosen)
        # No entry of an earlier pool id may be eligible.
        pool_rank = pool.index(chosen.proto_id)
        for pid in pool[:pool_rank]:
            assert not any(e.proto_id == pid and pred(e) for e in table)

    @given(table=table_strategy, pool=pool_strategy,
           locality=locality_strategy)
    def test_determinism(self, table, pool, locality):
        policy = FirstMatchPolicy()
        pred = lambda e: applicable(e, locality)

        def run():
            try:
                return policy.select(table, pool, locality, pred).proto_id
            except NoApplicableProtocolError:
                return None

        assert run() == run()

    @given(locality=locality_strategy)
    def test_rule_complements(self, locality):
        assert rule_applies("same-machine", locality) != \
            rule_applies("different-machine", locality)
        assert rule_applies("same-lan", locality) != \
            rule_applies("different-lan", locality)
        assert rule_applies("same-site", locality) != \
            rule_applies("different-site", locality)

    @given(locality=locality_strategy)
    def test_rule_nesting(self, locality):
        if rule_applies("same-machine", locality):
            assert rule_applies("same-lan", locality)
        if rule_applies("same-lan", locality):
            assert rule_applies("same-site", locality)


class TestPlacementProperties:
    placements = st.builds(
        Placement,
        machine=st.sampled_from(["m1", "m2", "m3"]),
        lan=st.sampled_from(["lan1", "lan2"]),
        site=st.sampled_from(["site1", "site2"]))

    @given(p=placements)
    def test_reflexive(self, p):
        loc = p.locality_to(p)
        assert loc.same_machine and loc.same_lan and loc.same_site

    @given(a=placements, b=placements)
    def test_same_machine_dominates(self, a, b):
        """Machine equality short-circuits to full locality, whatever the
        (possibly inconsistent) LAN/site tags claim."""
        if a.machine == b.machine:
            assert a.locality_to(b).same_machine

    @given(a=placements, b=placements)
    def test_wire_roundtrip(self, a, b):
        assert Placement.from_wire(a.to_wire()) == a
        # locality computed from wire forms matches the originals
        assert Placement.from_wire(a.to_wire()).locality_to(
            Placement.from_wire(b.to_wire())) == a.locality_to(b)
