"""Election, quorum-write, and failover tests for the directory
replica group, driven deterministically over simulated time (plus a
wall-clock admission-pushback flood)."""

import threading
import time

import pytest

from repro.admission import AdmissionPolicy
from repro.core import ORB
from repro.core.capabilities import TracingCapability
from repro.core.instrumentation import HookBus
from repro.directory import DirectoryCluster, LEADER
from repro.exceptions import (
    DirectoryUnavailableError,
    NameNotFoundError,
    RemoteException,
)
from repro.metrics.recorder import MetricsRecorder
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology

from tests.core.conftest import Counter

SEED = 11


def make_world(seed=SEED, replicas=3, **cluster_kwargs):
    topo = Topology()
    site = topo.add_site("site")
    lan = topo.add_lan("lan", site, ETHERNET_10)
    machines = [f"m{i}" for i in range(replicas)]
    for name in machines + ["mc"]:
        topo.add_machine(name, lan)
    sim = NetworkSimulator(topo, keep_records=0)
    orb = ORB(simulator=sim)
    cluster = DirectoryCluster(orb, replicas=replicas, machines=machines,
                               seed=seed, **cluster_kwargs)
    client_ctx = orb.context("cli", machine="mc")
    return sim, orb, cluster, client_ctx


def sample_oref(ctx, version=0):
    oref = ctx.export(Counter())
    oref.version = version
    return oref


class TestElection:
    def test_exactly_one_leaseholder(self):
        _sim, _orb, cluster, _cli = make_world()
        leader = cluster.elect()
        statuses = {nid: rep.role for nid, rep in
                    cluster.replicas.items()}
        assert statuses[leader] == LEADER
        assert sum(1 for role in statuses.values()
                   if role == LEADER) == 1
        assert cluster.leader_id() == leader

    def test_leader_elected_event_carries_quorum(self):
        bus = HookBus()
        recorder = MetricsRecorder().attach(bus)
        events = []
        bus.on("leader_elected", events.append)
        _sim, _orb, cluster, _cli = make_world(hooks=bus)
        cluster.elect()
        assert len(events) >= 1
        data = events[0].data
        assert data["votes"] >= 2 and data["peers"] == 3
        counters = recorder.snapshot()["counters"]
        assert counters["leader_elections_total"] >= 1.0
        assert recorder.registry.gauge("directory_term").value >= 1.0

    def test_quorum_write_replicates_to_followers(self):
        bus = HookBus()
        recorder = MetricsRecorder().attach(bus)
        _sim, _orb, cluster, cli = make_world(hooks=bus)
        cluster.elect()
        client = cluster.client(cli)
        oref = sample_oref(cli)
        assert client.bind("svc/a", oref) == 1
        assert client.rebind("svc/a", oref) == 2
        cluster.pump(1.0)  # a few heartbeats: followers replay the log
        for replica in cluster.replicas.values():
            assert replica.state.last_seq == 2
            record = replica.state.lookup("svc/a")
            assert record.version == 2
            assert record.oref.object_id == oref.object_id
        counters = recorder.snapshot()["counters"]
        assert counters["quorum_writes_total"] == 2.0
        assert counters["quorum_writes.bind"] == 1.0
        assert counters["quorum_writes.rebind"] == 1.0

    def test_resolve_serves_from_cache_until_fresh(self):
        _sim, _orb, cluster, cli = make_world()
        cluster.elect()
        client = cluster.client(cli)
        oref = sample_oref(cli)
        client.bind("svc/a", oref)
        client.cache.clear()
        first = client.resolve("svc/a")
        hits_before = client.cache.hits
        second = client.resolve("svc/a")
        assert client.cache.hits == hits_before + 1
        assert first.object_id == second.object_id
        fresh = client.resolve("svc/a", fresh=True)
        assert fresh.object_id == oref.object_id

    def test_miss_is_typed_and_counted(self):
        bus = HookBus()
        recorder = MetricsRecorder().attach(bus)
        _sim, _orb, cluster, cli = make_world(hooks=bus)
        cluster.elect()
        client = cluster.client(cli)
        with pytest.raises(NameNotFoundError):
            client.resolve("ghost")
        counters = recorder.snapshot()["counters"]
        assert counters["directory_misses_total"] >= 1.0

    def test_validation_errors_surface_not_fail_over(self):
        _sim, _orb, cluster, cli = make_world()
        cluster.elect()
        client = cluster.client(cli)
        oref = sample_oref(cli)
        client.bind("svc/a", oref)
        # A bind of a bound name is the caller's bug: it must marshal
        # back as the servant's exception, not dissolve into failover.
        with pytest.raises(RemoteException) as err:
            client.bind("svc/a", oref)
        assert err.value.remote_type == "NameAlreadyBoundError"

    def test_unbind_invalidates_cache(self):
        _sim, _orb, cluster, cli = make_world()
        cluster.elect()
        client = cluster.client(cli)
        client.bind("svc/a", sample_oref(cli))
        client.unbind("svc/a")
        with pytest.raises(NameNotFoundError):
            client.resolve("svc/a")


class TestFailover:
    def test_leader_kill_elects_new_leader(self):
        _sim, _orb, cluster, cli = make_world()
        first = cluster.elect()
        client = cluster.client(cli)
        oref = sample_oref(cli)
        client.bind("svc/a", oref)
        first_term = cluster.replicas[first].term

        cluster.stop_replica(first)
        second = cluster.elect()
        assert second != first
        assert cluster.replicas[second].term > first_term
        # Replicated state survives the crash...
        got = client.resolve("svc/a", fresh=True)
        assert got.object_id == oref.object_id
        # ...and the group still takes writes at quorum (2 of 3).
        assert client.bind("svc/b", sample_oref(cli)) == 1

    def test_no_quorum_without_majority(self):
        _sim, _orb, cluster, cli = make_world()
        first = cluster.elect()
        client = cluster.client(cli)
        survivors = [n for n in cluster.replicas if n != first]
        cluster.stop_replica(survivors[0])
        cluster.stop_replica(survivors[1])
        # The lone survivor cannot extend its lease: once it lapses,
        # writes get no leader at all.
        cluster.pump(cluster.replicas[first].lease_seconds * 3)
        assert cluster.leader_id() == ""
        with pytest.raises(DirectoryUnavailableError):
            client.bind("svc/x", sample_oref(cli))

    def test_rebind_object_follows_migration_sweep(self):
        _sim, _orb, cluster, cli = make_world()
        cluster.elect()
        client = cluster.client(cli)
        oref = sample_oref(cli)
        client.bind("svc/main", oref)
        client.bind("svc/alias", oref)
        moved = oref.clone()
        moved.version = oref.version + 1
        rebound = client.rebind_object(oref.object_id, moved)
        assert rebound == ["svc/alias", "svc/main"]
        for name in rebound:
            got = client.resolve(name, fresh=True)
            assert got.version == moved.version


class TestWriteQuorumSafety:
    def test_partial_catchup_ack_does_not_reach_quorum(self, monkeypatch):
        """A lagging follower acking a catch-up batch that stops short
        of the new entry must not count toward the write quorum: the
        client's ok has to mean a majority holds *the entry* at ack
        time, not merely that a majority answered a heartbeat."""
        import repro.directory.replica as replica_mod
        from repro.directory.state import OP_BIND

        monkeypatch.setattr(replica_mod, "CATCHUP_BATCH", 2)
        _sim, _orb, cluster, cli = make_world()
        first = cluster.elect()
        leader = cluster.replicas[first]
        followers = [n for n in sorted(cluster.replicas) if n != first]
        # One follower is dead: the quorum write can only go through
        # the surviving (and now lagging) one.
        cluster.stop_replica(followers[1])
        survivor = cluster.replicas[followers[0]]
        # The leader runs ahead of the survivor by more than one
        # catch-up batch (as if earlier replication rounds never
        # landed): the next write's first round ships a partial batch.
        oref = sample_oref(cli)
        for i in range(3):
            leader.state.append(
                leader.state.make_entry(leader.term, OP_BIND,
                                        f"pre/{i}", oref))
        assert leader.state.last_seq - survivor.state.last_seq > 2

        client = cluster.client(cli)
        version = client.bind("svc/new", oref)
        assert version == 1
        # The ack is honest: the survivor holds the entry *now*, not
        # after some future heartbeat the leader might not live to send.
        assert survivor.state.last_seq >= leader.state.last_seq
        assert survivor.state.last_seq == 4

    def test_quorum_loss_is_reported_not_acked(self):
        """With both followers dead but the lease still warm, a write
        must come back as a quorum failure immediately — never ok."""
        from repro.exceptions import QuorumWriteError

        _sim, _orb, cluster, cli = make_world()
        first = cluster.elect()
        for node_id in [n for n in cluster.replicas if n != first]:
            cluster.stop_replica(node_id)
        client = cluster.client(cli)
        with pytest.raises(QuorumWriteError):
            client.bind("svc/x", sample_oref(cli))
        # And the failed write is not served by the leader's reads.
        with pytest.raises((NameNotFoundError,
                            DirectoryUnavailableError)):
            client.resolve("svc/x", fresh=True)

    def test_append_entries_gap_is_a_nack(self):
        """A batch with a sequence gap nacks (the contiguous prefix is
        kept); it must never ack as if the whole batch were stored."""
        from repro.directory.replica import DirectoryReplica
        from repro.directory.state import OP_BIND, LogEntry

        orb = ORB()
        try:
            ctx = orb.context("lone")
            replica = DirectoryReplica(ctx, "lone", seed=1)
            oref = ctx.export(Counter())
            e1 = LogEntry(seq=1, term=1, op=OP_BIND, name="a",
                          oref=oref, version=1)
            e3 = LogEntry(seq=3, term=1, op=OP_BIND, name="c",
                          oref=oref, version=1)
            reply = replica.append_entries(
                1, "ldr", 0, 0, [e1.to_wire(), e3.to_wire()], 5)
            assert reply["ok"] is False
            assert reply["last_seq"] == 1
            # The stored prefix still commits up to what it holds.
            assert replica.state.lookup("a").version == 1
            assert replica.state.lookup("c") is None
        finally:
            orb.shutdown()


class TestDeposedLeaderReads:
    def test_miss_from_deposed_leader_is_not_authoritative(self):
        """A partitioned leader that has not ticked past its lease yet
        still self-reports as leader; its miss must keep the client
        probing instead of hard-failing a name the real leader holds."""
        from repro.directory.replica import LEADER as ROLE_LEADER
        from repro.directory.state import OP_BIND

        _sim, _orb, cluster, cli = make_world(replicas=2)
        deposed_id, current_id = sorted(cluster.replicas)
        deposed = cluster.replicas[deposed_id]
        current = cluster.replicas[current_id]
        # The probe-order-first replica looks like a leader whose lease
        # silently lapsed (no tick has noticed yet) and lags the group.
        deposed.role = ROLE_LEADER
        deposed.leader_id = deposed_id
        deposed.term = 1
        deposed._lease_until = deposed.clock.now() - 1.0
        # The real state lives on the other replica.
        oref = sample_oref(cli)
        entry = current.state.make_entry(2, OP_BIND, "svc/live", oref)
        current.state.append(entry)
        current.state.apply_to(entry.seq)

        client = cluster.client(cli)
        got = client.resolve("svc/live", fresh=True)
        assert got.object_id == oref.object_id


class TestGlueAndAdmission:
    def test_capabilities_apply_to_directory_traffic(self):
        """Directory RPCs ride the ordinary invoke path, so a glue
        stack hung on the replicas processes every resolve."""
        _sim, _orb, cluster, cli = make_world(
            glue_stacks=[[TracingCapability.describe()]])
        cluster.elect()
        client = cluster.client(cli)
        client.bind("svc/a", sample_oref(cli))
        client.resolve("svc/a", fresh=True)
        selections = {gp.describe_selection()
                      for gp in client._gps.values()}
        assert "glue[tracing]" in selections

    def test_resolve_flood_hits_admission_pushback(self):
        """Wall-clock rail: a resolve flood against a *stalled* replica
        running admission control is shed with pushback instead of
        queueing without bound.  The stall is explicit (the test holds
        the replica's lock) so the single admission worker blocks, the
        one-slot queue fills, and every further offer must shed."""
        from repro.core.instrumentation import GLOBAL_HOOKS
        from repro.core.resilience import RetryPolicy
        from repro.exceptions import HpcError

        orb = ORB()
        recorder = MetricsRecorder().attach(GLOBAL_HOOKS)
        cluster = DirectoryCluster(
            orb, replicas=3, lease_seconds=0.6, heartbeat_seconds=0.1,
            election_timeout=(0.2, 0.4),
            admission=AdmissionPolicy(
                enabled=True, max_limit=1, initial_limit=1,
                max_workers=1, queue_capacity=1, retry_after=0.005))
        try:
            cluster.start()
            deadline = time.time() + 10.0
            while not cluster.leader_id() and time.time() < deadline:
                time.sleep(0.05)
            assert cluster.leader_id()
            cli = orb.context("flood-cli")
            target = sorted(cluster.replicas)[0]
            replica = cluster.replicas[target]
            gps = [cli.bind(cluster.orefs[target].clone(),
                            retry_policy=RetryPolicy(max_attempts=1))
                   for _ in range(6)]
            outcomes = {"ok": 0, "refused": 0}
            lock = threading.Lock()

            def flood(gp):
                for _ in range(5):
                    try:
                        gp.invoke("resolve", "whatever")
                        with lock:
                            outcomes["ok"] += 1
                    except HpcError:
                        with lock:
                            outcomes["refused"] += 1

            replica._lock.acquire()  # stall the resolve handler
            try:
                threads = [threading.Thread(target=flood, args=(gp,))
                           for gp in gps]
                for t in threads:
                    t.start()
                time.sleep(0.4)
            finally:
                replica._lock.release()
            for t in threads:
                t.join(timeout=30.0)
            for gp in gps:
                gp.close(wait=False)
            counters = recorder.snapshot()["counters"]
            assert counters.get("sheds_total", 0.0) >= 1.0
            assert outcomes["refused"] >= 1
        finally:
            recorder.detach()
            cluster.stop()
            orb.shutdown()
