"""Seeded partition runs over the directory group: the determinism
contract (same seed => bit-identical trace) and the availability floor
through a leader partition + heal."""

from repro.core import ORB
from repro.core.instrumentation import HookBus
from repro.directory import DirectoryCluster, FOLLOWER
from repro.exceptions import HpcError
from repro.faults import FaultPlan
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology

from tests.core.conftest import Counter

SEED = 23
MACHINES = ["m0", "m1", "m2"]


def run_partition_scenario(seed=SEED):
    """Elect, bind, partition the leader away, keep resolving through
    the outage, heal, converge.  Returns a plain-data trace that two
    executions with the same seed must reproduce bit-identically."""
    topo = Topology()
    site = topo.add_site("site")
    lan = topo.add_lan("lan", site, ETHERNET_10)
    for name in MACHINES + ["mc"]:
        topo.add_machine(name, lan)
    sim = NetworkSimulator(topo, keep_records=0)
    orb = ORB(simulator=sim)
    bus = HookBus()
    events = []
    for kind in ("leader_elected", "lease_expired", "quorum_write"):
        bus.on(kind, lambda e: events.append((e.kind, dict(e.data))))
    cluster = DirectoryCluster(orb, replicas=3, machines=MACHINES,
                               seed=seed, hooks=bus)
    cli = orb.context("cli", machine="mc")
    client = cluster.client(cli)

    trace = []
    first = cluster.elect()
    oref = cli.export(Counter())
    for i in range(3):
        client.bind(f"svc/{i}", oref)

    # Partition the leader's machine from the other replicas (the
    # client's machine stays connected to everyone: reads must survive
    # on the follower side while writes re-home).
    leader_machine = MACHINES[int(first.split("-")[1])]
    others = [m for m in MACHINES if m != leader_machine]
    plan = FaultPlan(seed=seed)
    start = cluster.contexts[0].clock.now()
    plan.partition_at(start + 0.5, [leader_machine], others)
    plan.heal_at(start + 6.0)
    sim.fault_plan = plan

    ok = attempts = 0
    wrote_during = None
    for round_no in range(40):
        cluster.pump(0.25, plan=plan)
        for i in range(3):
            attempts += 1
            try:
                got = client.resolve(f"svc/{i}", fresh=True)
                ok += 1
                resolved_version = got.version
            except HpcError:
                resolved_version = None
        # Once the majority side should have re-elected, push one write
        # through it (retrying each round until the new leader takes
        # it).  The deposed leader never sees this entry, so its log is
        # provably behind and it cannot win the post-heal election.
        if wrote_during is None and round_no >= 8:
            try:
                wrote_during = (round_no,
                                client.bind("svc/during", oref))
            except HpcError:
                pass
        trace.append((round_no,
                      round(cluster.contexts[0].clock.now(), 6),
                      cluster.leader_id(),
                      resolved_version))
    # Post-heal convergence: the deposed leader campaigns with a high
    # term but a stale log, so it disrupts once or twice before the
    # majority re-elects over it and syncs it down to follower.  Pump
    # until that settles (bounded; the break round is as deterministic
    # as everything else here).
    settled_round = None
    for extra in range(40):
        cluster.pump(0.5, plan=plan)
        if (cluster.leader_id()
                and cluster.replicas[first].role == FOLLOWER
                and len({(rep.state.last_seq, rep.state.applied_seq)
                         for rep in cluster.replicas.values()}) == 1):
            settled_round = extra
            break
    second = cluster.leader_id()
    snapshots = {nid: rep.state.snapshot()
                 for nid, rep in sorted(cluster.replicas.items())}
    roles = {nid: rep.role for nid, rep in sorted(cluster.replicas.items())}
    terms = {nid: rep.term for nid, rep in sorted(cluster.replicas.items())}
    cluster.stop()
    return {
        "first": first,
        "second": second,
        "wrote_during": wrote_during,
        "settled_round": settled_round,
        "trace": trace,
        "events": events,
        "snapshots": snapshots,
        "roles": roles,
        "terms": terms,
        "availability": ok / attempts,
    }


class TestPartition:
    def test_leader_partition_heals_and_converges(self):
        result = run_partition_scenario()
        # A new leader took over on the majority side...
        assert result["second"] != ""
        kinds = [kind for kind, _data in result["events"]]
        assert kinds.count("leader_elected") >= 2
        # ...the deposed leader noticed its lease lapse, stepped down,
        # and rejoined as a follower with the group's term...
        assert "lease_expired" in kinds
        # ...the majority side accepted a write during the outage...
        assert result["wrote_during"] is not None
        assert result["settled_round"] is not None
        assert result["roles"][result["first"]] == FOLLOWER
        assert len(set(result["terms"].values())) == 1
        # ...and every replica converged on the same log and table.
        assert len(set(map(repr, result["snapshots"].values()))) == 1
        # Reads kept being served throughout the outage window.
        assert result["availability"] >= 0.8

    def test_same_seed_is_bit_identical(self):
        a = run_partition_scenario(seed=SEED)
        b = run_partition_scenario(seed=SEED)
        assert a == b

    def test_different_seed_diverges(self):
        """The RNG is load-bearing: a different seed draws different
        election timeouts, so the timed trace differs (if this ever
        fails spuriously, the seeds happened to collide — pick
        another)."""
        a = run_partition_scenario(seed=SEED)
        b = run_partition_scenario(seed=SEED + 1)
        assert a["trace"] != b["trace"] or a["events"] != b["events"]
