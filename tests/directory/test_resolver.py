"""Tests for the client-side resolver cache: TTL expiry, version
ordering, and MOVED-driven invalidation."""

import pytest

from repro.core import ORB
from repro.core.instrumentation import HookBus
from repro.directory.resolver import ResolverCache
from repro.exceptions import InvalidNameError
from repro.simnet.clock import VirtualClock

from tests.core.conftest import Counter


@pytest.fixture
def orb():
    orb = ORB()
    yield orb
    orb.shutdown()


@pytest.fixture
def oref(orb):
    return orb.context("cache-test").export(Counter())


def make_cache(ttl=5.0):
    bus = HookBus()
    events = []
    bus.on("cache_invalidate", events.append)
    return ResolverCache(VirtualClock(), ttl=ttl, hooks=bus), events


class TestResolverCache:
    def test_put_get_round_trip(self, oref):
        cache, _ = make_cache()
        assert cache.get("svc") is None
        assert cache.put("svc", oref, 1)
        got = cache.get("svc")
        assert got.object_id == oref.object_id
        assert cache.version_of("svc") == 1
        assert (cache.hits, cache.misses) == (1, 1)
        # The cache hands out copies, not its own entry.
        got.protocols.clear()
        assert cache.get("svc").protocols

    def test_ttl_expiry_is_silent(self, oref):
        cache, events = make_cache(ttl=2.0)
        cache.put("svc", oref, 1)
        cache.clock.advance(1.9)
        assert cache.get("svc") is not None
        cache.clock.advance(0.2)
        assert cache.get("svc") is None
        assert len(cache) == 0
        assert events == []  # expiry is routine, not an invalidation

    def test_version_ordering_rejects_rollback(self, oref):
        cache, _ = make_cache()
        newer = oref.clone()
        newer.version = 2
        assert cache.put("svc", newer, 5)
        assert not cache.put("svc", oref, 3)  # lagging follower answer
        assert cache.version_of("svc") == 5
        assert cache.put("svc", newer, 5)  # equal version refreshes TTL

    def test_invalidate_emits_reason(self, oref):
        cache, events = make_cache()
        cache.put("svc", oref, 1)
        assert cache.invalidate("svc", reason="unbound")
        assert not cache.invalidate("svc")  # already gone: no event
        assert len(events) == 1
        assert events[0].data["reason"] == "unbound"
        assert events[0].data["object_id"] == oref.object_id

    def test_note_moved_patches_every_alias(self, oref):
        cache, events = make_cache()
        cache.put("svc/main", oref, 1)
        cache.put("svc/alias", oref, 2)
        cache.put("other", oref.clone(), 1)
        other = cache.get("other")
        forward = oref.clone()
        forward.version = 3
        forward.context_id = "elsewhere"
        touched = cache.note_moved(oref.object_id, forward)
        # 'other' shares the object id, so all three aliases move.
        assert touched == 3
        for name in ("svc/main", "svc/alias", "other"):
            assert cache.get(name).context_id == "elsewhere"
        assert {e.data["reason"] for e in events} == {"moved"}
        assert other.context_id != "elsewhere"  # copies stay put

    def test_note_moved_drops_without_usable_forward(self, oref):
        cache, events = make_cache()
        newer = oref.clone()
        newer.version = 5
        cache.put("svc", newer, 1)
        stale_forward = oref.clone()
        stale_forward.version = 2  # older incarnation than cached
        assert cache.note_moved(oref.object_id, stale_forward) == 1
        assert cache.get("svc") is None
        assert events[0].data["reason"] == "moved_dropped"
        cache.put("svc", newer, 2)
        assert cache.note_moved(oref.object_id, None) == 1
        assert cache.get("svc") is None

    def test_bad_names_rejected(self, oref):
        cache, _ = make_cache()
        for op in (cache.get, cache.invalidate):
            with pytest.raises(InvalidNameError):
                op("")
        with pytest.raises(InvalidNameError):
            cache.put(None, oref, 1)

    def test_context_has_a_resolver(self, orb):
        """Every context carries a ResolverCache on its own clock."""
        ctx = orb.context("has-resolver")
        assert isinstance(ctx.resolver, ResolverCache)
        assert ctx.resolver.clock is ctx.clock
