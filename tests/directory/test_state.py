"""Tests for the directory's replicated state machine: the versioned
binding log, its table, and the wire form entries travel in."""

import pytest

from repro.core import ORB
from repro.directory.state import (
    OP_BIND,
    OP_REBIND,
    OP_UNBIND,
    DirectoryState,
    LogEntry,
)
from repro.exceptions import (
    DirectoryError,
    InvalidNameError,
    NameAlreadyBoundError,
    NameNotFoundError,
)
from repro.serialization.marshal import dumps, loads

from tests.core.conftest import Counter


@pytest.fixture
def oref():
    orb = ORB()
    try:
        yield orb.context("state-test").export(Counter())
    finally:
        orb.shutdown()


def append(state, term, op, name, oref):
    """Append *and commit* one entry (most table tests want the
    committed view; the commit-gating tests drive apply_to by hand)."""
    entry = state.make_entry(term, op, name, oref)
    state.append(entry)
    state.apply_to(entry.seq)
    return entry


class TestLogAndTable:
    def test_versions_increase_per_name(self, oref):
        state = DirectoryState()
        e1 = append(state, 1, OP_BIND, "svc", oref)
        e2 = append(state, 1, OP_REBIND, "svc", oref)
        e3 = append(state, 1, OP_UNBIND, "svc", None)
        e4 = append(state, 2, OP_BIND, "svc", oref)
        assert [e.version for e in (e1, e2, e3, e4)] == [1, 2, 3, 4]
        assert [e.seq for e in (e1, e2, e3, e4)] == [1, 2, 3, 4]
        assert state.lookup("svc").version == 4

    def test_leader_side_validation(self, oref):
        state = DirectoryState()
        append(state, 1, OP_BIND, "svc", oref)
        with pytest.raises(NameAlreadyBoundError):
            state.make_entry(1, OP_BIND, "svc", oref)
        with pytest.raises(NameNotFoundError):
            state.make_entry(1, OP_UNBIND, "ghost", None)
        with pytest.raises(InvalidNameError):
            state.make_entry(1, OP_BIND, "", oref)
        with pytest.raises(DirectoryError):
            state.make_entry(1, "promote", "svc", oref)

    def test_unbind_leaves_tombstone(self, oref):
        state = DirectoryState()
        append(state, 1, OP_BIND, "svc", oref)
        append(state, 1, OP_UNBIND, "svc", None)
        record = state.lookup("svc")
        assert record is not None and record.oref is None
        assert state.names() == []
        assert len(state) == 0
        # Rebinding over a tombstone continues the version chain.
        entry = append(state, 1, OP_BIND, "svc", oref)
        assert entry.version == 3

    def test_append_rejects_gaps_and_term_regress(self, oref):
        state = DirectoryState()
        entry = state.make_entry(3, OP_BIND, "svc", oref)
        state.append(entry)
        gap = LogEntry(seq=5, term=3, op=OP_BIND, name="x",
                       oref=oref, version=1)
        with pytest.raises(DirectoryError):
            state.append(gap)
        regress = LogEntry(seq=2, term=2, op=OP_BIND, name="x",
                           oref=oref, version=1)
        with pytest.raises(DirectoryError):
            state.append(regress)

    def test_truncate_rebuilds_table(self, oref):
        state = DirectoryState()
        append(state, 1, OP_BIND, "a", oref)
        append(state, 1, OP_BIND, "b", oref)
        append(state, 1, OP_REBIND, "a", oref)
        state.truncate(2)
        assert state.last_seq == 2
        assert state.lookup("a").version == 1
        assert state.names() == ["a", "b"]
        # Truncating at/after the tip is a no-op.
        state.truncate(5)
        assert state.last_seq == 2

    def test_lookup_returns_copies(self, oref):
        state = DirectoryState()
        append(state, 1, OP_BIND, "svc", oref)
        got = state.lookup("svc")
        got.oref.protocols.clear()
        assert state.lookup("svc").oref.protocols

    def test_names_for_object(self, oref):
        state = DirectoryState()
        append(state, 1, OP_BIND, "svc/main", oref)
        append(state, 1, OP_BIND, "svc/alias", oref)
        assert state.names_for_object(oref.object_id) == \
            ["svc/alias", "svc/main"]
        assert state.names_for_object("ghost") == []

    def test_uncommitted_entries_are_not_served(self, oref):
        """Reads come from the committed prefix only: an appended but
        unapplied entry is invisible to lookup/names/len — a client
        whose write failed quorum must never see it resolve."""
        state = DirectoryState()
        entry = state.make_entry(1, OP_BIND, "svc", oref)
        state.append(entry)
        assert state.last_seq == 1
        assert state.applied_seq == 0
        assert state.lookup("svc") is None
        assert state.names() == []
        assert len(state) == 0
        state.apply_to(entry.seq)
        assert state.applied_seq == 1
        assert state.lookup("svc").version == 1

    def test_apply_to_is_monotone_and_clamped(self, oref):
        state = DirectoryState()
        for i in range(3):
            state.append(state.make_entry(1, OP_BIND, f"n{i}", oref))
        assert state.apply_to(2) == 2
        assert state.names() == ["n0", "n1"]
        # Re-applying an older seq never rolls the table back...
        assert state.apply_to(1) == 2
        assert state.names() == ["n0", "n1"]
        # ...and applying past the tip clamps to it.
        assert state.apply_to(99) == 3
        assert state.names() == ["n0", "n1", "n2"]

    def test_make_entry_validates_against_uncommitted_suffix(self, oref):
        """The leader's own in-flight entries count: a second bind of a
        name whose first bind is appended-but-uncommitted must fail,
        and the version chain continues from the suffix, not the
        committed table."""
        state = DirectoryState()
        state.append(state.make_entry(1, OP_BIND, "svc", oref))
        with pytest.raises(NameAlreadyBoundError):
            state.make_entry(1, OP_BIND, "svc", oref)
        follow_up = state.make_entry(1, OP_REBIND, "svc", oref)
        assert follow_up.version == 2
        # An uncommitted unbind makes the name unbindable-from again.
        state.append(follow_up)
        state.append(state.make_entry(1, OP_UNBIND, "svc", None))
        with pytest.raises(NameNotFoundError):
            state.make_entry(1, OP_UNBIND, "svc", None)
        assert state.make_entry(1, OP_BIND, "svc", oref).version == 4

    def test_truncate_uncommitted_suffix_leaves_table_alone(self, oref):
        state = DirectoryState()
        committed = state.make_entry(1, OP_BIND, "a", oref)
        state.append(committed)
        state.apply_to(committed.seq)
        state.append(state.make_entry(1, OP_BIND, "b", oref))
        state.truncate(1)  # divergent uncommitted suffix drops
        assert state.last_seq == 1
        assert state.applied_seq == 1
        assert state.names() == ["a"]

    def test_entries_from_and_term_at(self, oref):
        state = DirectoryState()
        for i in range(5):
            append(state, 1, OP_BIND, f"n{i}", oref)
        tail = state.entries_from(3)
        assert [e.seq for e in tail] == [3, 4, 5]
        assert [e.seq for e in state.entries_from(1, limit=2)] == [1, 2]
        assert state.term_at(0) == 0
        assert state.term_at(3) == 1
        with pytest.raises(DirectoryError):
            state.term_at(99)


class TestWireForm:
    def test_round_trip_through_marshal(self, oref):
        entry = LogEntry(seq=7, term=3, op=OP_REBIND, name="svc",
                         oref=oref, version=4)
        wire = loads(dumps(entry.to_wire()))
        back = LogEntry.from_wire(wire)
        assert (back.seq, back.term, back.op, back.name, back.version) \
            == (7, 3, OP_REBIND, "svc", 4)
        assert back.oref.object_id == oref.object_id

    def test_unbind_carries_no_oref(self):
        entry = LogEntry(seq=1, term=1, op=OP_UNBIND, name="svc",
                         oref=None, version=3)
        back = LogEntry.from_wire(loads(dumps(entry.to_wire())))
        assert back.oref is None

    def test_unknown_op_rejected(self):
        with pytest.raises(DirectoryError):
            LogEntry.from_wire({"seq": 1, "term": 1, "op": "promote",
                                "name": "x", "version": 1, "oref": None})
