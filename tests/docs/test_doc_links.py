"""Link-check every markdown file in the repository.

Relative markdown links (``[text](path)`` and ``[text](path#anchor)``)
must point at files that exist, resolved against the linking file's
directory.  External links (http/https/mailto) and pure anchors are
skipped.  Bare token references like ``docs/EVENTS.md`` or
``ROADMAP.md`` in prose/backticks must also resolve, so a renamed doc
cannot leave stale mentions behind.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules",
             ".benchmarks"}

#: [text](target) — excluding images' inner brackets and code spans.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: path-like tokens ending in .md (e.g. `docs/EVENTS.md`, README.md)
TOKEN_RE = re.compile(r"(?<![\w/(])((?:[A-Za-z0-9_.-]+/)*[A-Z][A-Za-z0-9_-]*\.md)\b")


def markdown_files():
    files = []
    for path in sorted(REPO.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            files.append(path)
    return files


def check_target(md_file, target):
    target = target.split("#", 1)[0]
    if not target:                        # pure anchor
        return None
    if re.match(r"^[a-z][a-z0-9+.-]*:", target):   # http:, mailto:, hpcor:
        return None
    resolved = (md_file.parent / target).resolve()
    if not resolved.exists():
        return f"{md_file.relative_to(REPO)}: broken link -> {target}"
    return None


@pytest.mark.parametrize("md_file", markdown_files(),
                         ids=lambda p: str(p.relative_to(REPO)))
def test_markdown_links_resolve(md_file):
    text = md_file.read_text()
    problems = []
    for target in LINK_RE.findall(text):
        problem = check_target(md_file, target)
        if problem:
            problems.append(problem)
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("md_file", markdown_files(),
                         ids=lambda p: str(p.relative_to(REPO)))
def test_markdown_doc_tokens_resolve(md_file):
    """`docs/FOO.md`-style mentions must name a real file (tried both
    relative to the mentioning file and to the repo root)."""
    text = md_file.read_text()
    problems = []
    for token in set(TOKEN_RE.findall(text)):
        candidates = [(md_file.parent / token), (REPO / token)]
        if not any(c.exists() for c in candidates):
            problems.append(
                f"{md_file.relative_to(REPO)}: stale doc reference "
                f"{token!r}")
    assert not problems, "\n".join(problems)


def test_markdown_corpus_nonempty():
    files = markdown_files()
    assert len(files) >= 5, files
