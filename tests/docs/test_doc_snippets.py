"""Execute the documentation's python snippets.

Each document's ``python`` fences are concatenated in order and run as
one program in a subprocess (fresh interpreter: global registries, the
GLOBAL_HOOKS bus, and ORB state never leak into the test process).  A
fence whose preceding non-blank line is ``<!-- no-run -->`` is an
illustrative sketch and is skipped.

This keeps the tutorial honest: a snippet that stops working fails CI.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
DOCS = [REPO / "docs" / "TUTORIAL.md", REPO / "docs" / "EVENTS.md"]

NO_RUN = "<!-- no-run -->"


def python_fences(path):
    """Yield (start_line, source) for each runnable python fence."""
    lines = path.read_text().splitlines()
    fences = []
    in_fence = False
    start = 0
    buf = []
    last_nonblank = ""
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if in_fence:
            if stripped == "```":
                fences.append((start, "\n".join(buf)))
                in_fence = False
                buf = []
            else:
                buf.append(line)
            continue
        if stripped == "```python":
            if last_nonblank == NO_RUN:
                in_fence = True  # consume, then drop
                start = -lineno
            else:
                in_fence = True
                start = lineno
        if stripped:
            last_nonblank = stripped
    return [(ln, src) for ln, src in fences if ln > 0]


def assemble_program(path):
    parts = []
    for start, src in python_fences(path):
        parts.append(f"# --- {path.name}:{start} ---")
        parts.append(src)
    return "\n".join(parts) + "\n"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_doc_snippets_execute(doc):
    program = assemble_program(doc)
    assert program.strip(), f"{doc.name} has no runnable python fences"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, "-c", program], env=env, cwd=str(REPO),
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, (
        f"snippets of {doc.name} failed "
        f"(markers like '--- {doc.name}:<line> ---' in the assembled "
        f"program locate the fence):\n{proc.stderr}")


def test_no_run_marker_skips_fence(tmp_path):
    doc = tmp_path / "sample.md"
    doc.write_text(
        "```python\nx = 1\n```\n\n"
        "<!-- no-run -->\n```python\nraise SystemExit(1)\n```\n\n"
        "```python\nassert x == 1\n```\n")
    sources = [src for _ln, src in python_fences(doc)]
    assert sources == ["x = 1", "assert x == 1"]
