"""docs/EVENTS.md is the authoritative event contract — enforce it.

Two-way diff: every event name emitted anywhere in ``src/repro`` must
be documented in the event-reference tables, and every documented
event must still have an emit site.  The metric names the recorder
produces must be documented too.
"""

import pathlib
import re

from repro.core.instrumentation import HookBus
from repro.metrics import MetricsRecorder
from repro.simnet.clock import VirtualClock

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
EVENTS_DOC = REPO / "docs" / "EVENTS.md"

#: emit("name", ...) / _emit("name", ...) with a literal event name.
EMIT_RE = re.compile(r"""\b_?emit\(\s*["']([a-z_]+)["']""")


def emitted_event_names() -> set:
    names = set()
    for path in SRC.rglob("*.py"):
        names.update(EMIT_RE.findall(path.read_text()))
    return names


def documented_event_names() -> set:
    text = EVENTS_DOC.read_text()
    start = text.index("## Event reference")
    end = text.index("## Metric names")
    section = text[start:end]
    return set(re.findall(r"^\| `([a-z_]+)`", section, re.MULTILINE))


def test_every_emitted_event_is_documented():
    emitted = emitted_event_names()
    assert emitted, "no emit sites found — extraction regex broken?"
    undocumented = emitted - documented_event_names()
    assert not undocumented, (
        f"events emitted in src/repro but missing from docs/EVENTS.md: "
        f"{sorted(undocumented)}")


def test_every_documented_event_is_emitted():
    documented = documented_event_names()
    assert documented, "no documented events found — doc parsing broken?"
    stale = documented - emitted_event_names()
    assert not stale, (
        f"events documented in docs/EVENTS.md with no emit site left: "
        f"{sorted(stale)}")


def test_recorder_metric_names_are_documented():
    """Feed one of every event through a recorder; each metric name it
    mints must appear in docs/EVENTS.md."""
    bus = HookBus()
    rec = MetricsRecorder(clock=VirtualClock()).attach(bus)
    bus.emit("request", outcome="ok", duration=0.01)
    bus.emit("request", outcome="error", error=None, duration=0.01)
    bus.emit("selection", proto_id="p")
    bus.emit("moved")
    bus.emit("migration")
    bus.emit("retry", attempt=1, backoff=0.1)
    bus.emit("failover", from_proto="a", to_proto="b")
    bus.emit("breaker_open", context_id="c", proto_id="p")
    bus.emit("breaker_close", context_id="c", proto_id="p")
    bus.emit("budget_exhausted", tokens=0.0)
    bus.emit("hedge", delay=0.1)
    bus.emit("hedge_win", latency=0.1)
    bus.emit("hedge_loss", latency=0.1)
    bus.emit("batch_flush", context_id="c", proto_id="p", size=4,
             nbytes=256, reason="window", duration=0.01)
    bus.emit("batch_fallback", method="m", context_id="c", proto_id="p",
             error=None, dispatched=False)
    bus.emit("fault_injected", fault="drop", detail="a->b")
    bus.emit("fault_phase", at=0.0, now=0.0, label="x")
    bus.emit("admit", priority=0, cost=1, depth=1, units=1)
    bus.emit("shed", reason="queue_full", priority=1, cost=4,
             retry_after=0.05, depth=8)
    bus.emit("limit_change", limit=8, previous=9, p50=0.02,
             baseline=0.005)
    bus.emit("proc_spawn", node="n0", pid=101)
    bus.emit("proc_exit", node="n0", pid=101, returncode=-9,
             how="sigkill")
    bus.emit("proc_pause", node="n1", pid=102, action="pause")
    snap = rec.snapshot()
    doc = EVENTS_DOC.read_text()
    names = (list(snap["counters"]) + list(snap["gauges"])
             + list(snap["histograms"]) + list(snap["series"]))
    assert names
    for name in names:
        if name.startswith("faults_injected."):
            name = "faults_injected.<kind>"
        if name.startswith("sheds."):
            name = "sheds.<reason>"
        if name.startswith("proc_exits."):
            name = "proc_exits.<how>"
        if name.startswith("proc_pauses."):
            name = "proc_pauses.<action>"
        assert f"`{name}`" in doc, (
            f"metric {name!r} produced by MetricsRecorder but not "
            f"documented in docs/EVENTS.md")
