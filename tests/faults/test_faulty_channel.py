"""FaultyChannel / FaultyTransport over a real (inproc) transport."""

import pytest

from repro.core.instrumentation import HookBus
from repro.exceptions import (
    ChannelClosedError,
    DeliveryError,
    TransportError,
)
from repro.faults import FaultPlan, FaultyChannel, FaultyTransport
from repro.simnet.clock import VirtualClock
from repro.transport.inproc import InProcTransport


def plan_with(**_ignored):
    return FaultPlan(hooks=HookBus())


@pytest.fixture
def pair():
    """(client channel, server channel) over a fresh inproc transport."""
    transport = InProcTransport()
    listener = transport.listen({"key": "ft"})
    client = transport.connect({"transport": "inproc", "key": "ft"})
    server = listener.accept(timeout=1.0)
    yield client, server
    client.close()
    server.close()
    listener.close()


class TestFaultyChannel:
    def test_clean_passthrough(self, pair):
        client, server = pair
        faulty = FaultyChannel(client, plan_with(), label="c")
        faulty.send(b"ping")
        assert server.recv(timeout=1.0) == b"ping"
        server.send(b"pong")
        assert faulty.recv(timeout=1.0) == b"pong"

    def test_send_drop(self, pair):
        client, server = pair
        plan = plan_with()
        plan.drop(label="c", point="send")
        faulty = FaultyChannel(client, plan, label="c")
        with pytest.raises(DeliveryError):
            faulty.send(b"ping")
        with pytest.raises(TransportError):
            server.recv(timeout=0.05)  # nothing arrived

    def test_disconnect_closes_inner(self, pair):
        client, _server = pair
        plan = plan_with()
        plan.disconnect(label="c", point="send")
        faulty = FaultyChannel(client, plan, label="c")
        with pytest.raises(ChannelClosedError):
            faulty.send(b"ping")
        assert faulty.closed

    def test_recv_corrupt_flips_byte(self, pair):
        client, server = pair
        plan = plan_with()
        plan.corrupt(label="c", point="recv")
        faulty = FaultyChannel(client, plan, label="c")
        server.send(b"\x00" * 16)
        data = faulty.recv(timeout=1.0)
        assert len(data) == 16 and data != b"\x00" * 16

    def test_delay_advances_virtual_clock(self, pair):
        client, server = pair
        clock = VirtualClock()
        plan = plan_with()
        plan.delay(2.5, label="c", point="send")
        faulty = FaultyChannel(client, plan, label="c", clock=clock)
        faulty.send(b"ping")
        assert clock.now() == pytest.approx(2.5)
        assert server.recv(timeout=1.0) == b"ping"  # delayed, not lost


class TestFaultyTransport:
    def test_connect_failure(self):
        transport = InProcTransport()
        listener = transport.listen({"key": "cf"})
        plan = plan_with()
        plan.drop(point="connect")
        faulty = FaultyTransport(transport, plan)
        with pytest.raises(TransportError):
            faulty.connect({"transport": "inproc", "key": "cf"})
        listener.close()

    def test_label_defaults_to_transport_name(self):
        transport = InProcTransport()
        faulty = FaultyTransport(transport, plan_with())
        assert faulty.label == "inproc"
        assert faulty.name == "inproc"

    def test_connected_channels_are_wrapped(self):
        transport = InProcTransport()
        listener = transport.listen({"key": "wrap"})
        plan = plan_with()
        plan.drop(label="inproc", point="send", after=1)
        faulty = FaultyTransport(transport, plan)
        chan = faulty.connect({"transport": "inproc", "key": "wrap"})
        server = listener.accept(timeout=1.0)
        chan.send(b"first")                      # after=1 lets this pass
        assert server.recv(timeout=1.0) == b"first"
        with pytest.raises(DeliveryError):
            chan.send(b"second")
        listener.close()

    def test_listener_wrapping_opt_in(self):
        transport = InProcTransport()
        plan = plan_with()
        plan.drop(label="inproc", point="recv")
        faulty = FaultyTransport(transport, plan, wrap_listeners=True)
        listener = faulty.listen({"key": "srv"})
        chan = transport.connect({"transport": "inproc", "key": "srv"})
        server = listener.accept(timeout=1.0)
        chan.send(b"ping")
        with pytest.raises(DeliveryError):
            server.recv(timeout=1.0)
        listener.close()
