"""FaultPlan unit tests: rule matching, counters, determinism."""

import pytest

from repro.core.instrumentation import HookBus
from repro.faults import FaultPlan, FaultRule


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("explode")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule("drop", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule("drop", probability=-0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("delay", delay=-1.0)

    def test_partition_groups_must_be_disjoint(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.partition({"m1", "m2"}, {"m2", "m3"})


class TestLinkDecisions:
    def test_no_rules_no_decision(self):
        plan = FaultPlan(hooks=HookBus())
        assert plan.decide_link("m0", "m1", 100) is None
        assert plan.injected == []

    def test_drop_matches_src_dst_filters(self):
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="m0", dst="m1")
        assert plan.decide_link("m1", "m0", 1) is None
        decision = plan.decide_link("m0", "m1", 1)
        assert decision.kind == "drop"
        assert plan.injected == [("drop", "m0->m1")]

    def test_after_skips_first_n(self):
        plan = FaultPlan(hooks=HookBus())
        plan.drop(after=2)
        assert plan.decide_link("a", "b", 1) is None
        assert plan.decide_link("a", "b", 1) is None
        assert plan.decide_link("a", "b", 1).kind == "drop"

    def test_count_caps_firings(self):
        plan = FaultPlan(hooks=HookBus())
        plan.drop(count=2)
        assert plan.decide_link("a", "b", 1).kind == "drop"
        assert plan.decide_link("a", "b", 1).kind == "drop"
        assert plan.decide_link("a", "b", 1) is None

    def test_delays_accumulate(self):
        plan = FaultPlan(hooks=HookBus())
        plan.delay(0.5)
        plan.delay(0.25)
        decision = plan.decide_link("a", "b", 1)
        assert decision.kind == "delay"
        assert decision.delay == pytest.approx(0.75)

    def test_partition_drops_both_directions(self):
        plan = FaultPlan(hooks=HookBus())
        plan.partition({"m1"}, {"m2", "m3"})
        assert plan.decide_link("m1", "m2", 1).kind == "drop"
        assert plan.decide_link("m3", "m1", 1).kind == "drop"
        assert plan.decide_link("m2", "m3", 1) is None  # same side
        plan.heal()
        assert plan.decide_link("m1", "m2", 1) is None

    def test_corrupt_rules_ignored_by_decide_link(self):
        """Corruption is applied by the byte-holding layer, not the
        accounting transfer."""
        plan = FaultPlan(hooks=HookBus())
        plan.corrupt()
        assert plan.decide_link("a", "b", 1) is None


class TestChannelDecisions:
    def test_point_and_label_filters(self):
        plan = FaultPlan(hooks=HookBus())
        plan.disconnect(label="tcp", point="send")
        assert plan.decide_channel("recv", "tcp") is None
        assert plan.decide_channel("send", "inproc") is None
        assert plan.decide_channel("send", "tcp").kind == "disconnect"

    def test_link_scoped_rules_ignored_by_channels(self):
        plan = FaultPlan(hooks=HookBus())
        plan.drop(src="m0")
        assert plan.decide_channel("send", "tcp") is None


class TestCorruption:
    def test_corrupt_flips_exactly_one_byte(self):
        plan = FaultPlan(seed=3, hooks=HookBus())
        payload = bytes(range(64))
        mangled = plan.corrupt_bytes(payload)
        assert len(mangled) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, mangled))
                 if a != b]
        assert len(diffs) == 1
        assert mangled[diffs[0]] == payload[diffs[0]] ^ 0xFF

    def test_empty_payload_untouched(self):
        assert FaultPlan(hooks=HookBus()).corrupt_bytes(b"") == b""

    def test_maybe_corrupt_respects_link_filter(self):
        plan = FaultPlan(hooks=HookBus())
        plan.corrupt(src="m0", dst="m1")
        data = b"x" * 32
        assert plan.maybe_corrupt("m1", "m0", data) == data
        assert plan.maybe_corrupt("m0", "m1", data) != data


class TestDeterminism:
    def _run(self, seed):
        plan = FaultPlan(seed=seed, hooks=HookBus())
        plan.drop(probability=0.3, src="m0")
        plan.delay(0.1, probability=0.5, dst="m2")
        trail = []
        for i in range(200):
            decision = plan.decide_link("m0", f"m{i % 4}", 128)
            trail.append(None if decision is None
                         else (decision.kind, decision.delay))
        return trail, list(plan.injected)

    def test_same_seed_same_script(self):
        assert self._run(42) == self._run(42)

    def test_different_seed_diverges(self):
        assert self._run(42) != self._run(43)

    def test_hook_events_fire(self):
        bus = HookBus()
        seen = []
        bus.on("fault_injected", lambda e: seen.append(e.data["fault"]))
        plan = FaultPlan(hooks=bus)
        plan.drop()
        plan.decide_link("a", "b", 1)
        assert seen == ["drop"]
