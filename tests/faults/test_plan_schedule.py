"""Tests for FaultPlan phase/recovery scheduling and reuse."""

import pytest

from repro.core.instrumentation import HookBus
from repro.faults import FaultPlan, FaultRule


class TestScheduling:
    def test_actions_fire_at_or_before_now(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        order = []
        plan.schedule(2.0, lambda p: order.append("b"), label="b")
        plan.schedule(1.0, lambda p: order.append("a"), label="a")
        assert plan.apply_until(0.5) == []
        fired = plan.apply_until(2.0)
        assert order == ["a", "b"]          # time order, not registration
        assert [f.label for f in fired] == ["a", "b"]

    def test_actions_fire_once(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        hits = []
        plan.schedule(1.0, lambda p: hits.append(1))
        plan.apply_until(5.0)
        plan.apply_until(9.0)
        assert hits == [1]

    def test_tie_break_is_registration_order(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        order = []
        plan.schedule(1.0, lambda p: order.append("first"))
        plan.schedule(1.0, lambda p: order.append("second"))
        plan.apply_until(1.0)
        assert order == ["first", "second"]

    def test_fault_phase_event(self):
        bus = HookBus()
        events = []
        bus.on("fault_phase", lambda e: events.append(e.data))
        plan = FaultPlan(seed=1, hooks=bus)
        plan.heal_at(3.0)
        plan.apply_until(4.0)
        assert events == [{"at": 3.0, "now": 4.0, "label": "heal"}]

    def test_negative_time_rejected(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        with pytest.raises(ValueError):
            plan.schedule(-1.0, lambda p: None)


class TestPhaseHelpers:
    def test_partition_at_and_heal_at(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        plan.partition_at(1.0, {"m0"}, {"m1"})
        plan.heal_at(2.0)
        assert plan.decide_link("m0", "m1", 10) is None
        plan.apply_until(1.0)
        assert plan.decide_link("m0", "m1", 10).kind == "drop"
        plan.apply_until(2.0)
        assert plan.decide_link("m0", "m1", 10) is None

    def test_rule_between_window(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        plan.rule_between(1.0, 2.0, FaultRule("drop", src="a"))
        assert plan.decide_link("a", "b", 1) is None
        plan.apply_until(1.0)
        assert plan.decide_link("a", "b", 1).kind == "drop"
        plan.apply_until(2.0)
        assert plan.decide_link("a", "b", 1) is None
        with pytest.raises(ValueError):
            plan.rule_between(2.0, 1.0, FaultRule("drop"))

    def test_flap_node(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        plan.flap_node("m2", ["m0", "m1", "m2"], at=1.0, duration=1.0)
        plan.apply_until(1.0)
        assert plan.decide_link("m0", "m2", 1).kind == "drop"
        assert plan.decide_link("m0", "m1", 1) is None
        plan.apply_until(2.0)
        assert plan.decide_link("m0", "m2", 1) is None

    def test_flap_validation(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        with pytest.raises(ValueError):
            plan.flap_node("m0", ["m0"], at=0.0, duration=1.0)
        with pytest.raises(ValueError):
            plan.flap_node("m0", ["m1"], at=0.0, duration=0.0)

    def test_unpartition_is_specific(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        plan.partition({"a"}, {"b"})
        plan.partition({"c"}, {"d"})
        plan.unpartition({"b"}, {"a"})       # order-insensitive
        assert plan.decide_link("a", "b", 1) is None
        assert plan.decide_link("c", "d", 1).kind == "drop"


class TestReset:
    def test_reset_rewinds_everything(self):
        plan = FaultPlan(seed=7, hooks=HookBus())
        plan.drop(probability=0.5, src="a")
        plan.rule_between(0.0, 5.0, FaultRule("delay", delay=0.01,
                                              src="a"))
        plan.partition({"x"}, {"y"})

        def trail():
            plan.apply_until(1.0)
            return [plan.decide_link("a", "b", 1) for _ in range(20)], \
                list(plan.injected)

        first = trail()
        assert plan.consumed
        plan.reset()
        assert not plan.consumed
        assert plan.injected == []
        # authored partition survives reset; scheduled rules are gone
        assert plan.decide_link("x", "y", 1).kind == "drop"
        plan.injected.clear()
        second = trail()
        assert first == second               # bit-identical replay

    def test_reset_removes_scheduled_rules(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        authored = plan.drop(src="a")
        plan.rule_between(0.0, 9.0, FaultRule("corrupt", src="b"))
        plan.apply_until(0.0)
        assert len(plan.rules) == 2
        plan.reset()
        assert plan.rules == [authored]
        assert authored.seen == 0 and authored.fired == 0

    def test_remove_unknown_rule_is_noop(self):
        plan = FaultPlan(seed=1, hooks=HookBus())
        plan.remove(FaultRule("drop"))
        assert plan.rules == []
