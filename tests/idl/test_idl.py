"""Tests for interface specs, decorators, views, parser, and stubs."""

import pytest

from repro.exceptions import (
    IdlError,
    IdlSyntaxError,
    InterfaceError,
    MethodNotExposedError,
)
from repro.idl import (
    InterfaceSpec,
    InterfaceView,
    MethodSpec,
    ParamSpec,
    interface_of,
    make_stub_class,
    parse_idl,
    remote_interface,
    remote_method,
)


@remote_interface("Weather")
class WeatherService:
    @remote_method(returns="array")
    def get_map(self, region: str, resolution: int):
        """Return the weather map for a region."""
        return [region, resolution]

    @remote_method(oneway=True)
    def feed(self, data):
        pass

    @remote_method
    def remaining_credits(self) -> int:
        return 3

    def not_remote(self):
        return "hidden"


class TestSpecs:
    def test_param_validation(self):
        with pytest.raises(IdlError):
            ParamSpec("not an ident!")
        with pytest.raises(IdlError):
            ParamSpec("x", "nonsense-type")

    def test_method_validation(self):
        with pytest.raises(IdlError):
            MethodSpec("bad name")
        with pytest.raises(IdlError):
            MethodSpec("m", returns="weird")
        with pytest.raises(IdlError):
            MethodSpec("m", params=(ParamSpec("a"), ParamSpec("a")))

    def test_oneway_needs_void(self):
        with pytest.raises(IdlError):
            MethodSpec("m", returns="int", oneway=True)

    def test_interface_key_consistency(self):
        with pytest.raises(IdlError):
            InterfaceSpec("I", methods={"x": MethodSpec("y")})

    def test_subset(self):
        spec = interface_of(WeatherService)
        sub = spec.subset(["get_map"])
        assert sub.method_names() == ("get_map",)
        assert sub.name == "WeatherView"

    def test_subset_unknown_method(self):
        spec = interface_of(WeatherService)
        with pytest.raises(IdlError):
            spec.subset(["nope"])

    def test_method_lookup_missing(self):
        spec = interface_of(WeatherService)
        with pytest.raises(MethodNotExposedError):
            spec.method("nope")

    def test_wire_roundtrip(self):
        spec = interface_of(WeatherService)
        again = InterfaceSpec.from_wire(spec.to_wire())
        assert again.method_names() == spec.method_names()
        assert again.methods["feed"].oneway
        assert again.methods["get_map"].params == \
            spec.methods["get_map"].params


class TestDecorators:
    def test_collects_marked_methods(self):
        spec = interface_of(WeatherService)
        assert set(spec.method_names()) == \
            {"get_map", "feed", "remaining_credits"}

    def test_instance_lookup(self):
        assert interface_of(WeatherService()) is \
            interface_of(WeatherService)

    def test_annotations_become_types(self):
        spec = interface_of(WeatherService)
        params = spec.methods["get_map"].params
        assert params[0].type == "string"
        assert params[1].type == "int"

    def test_return_annotation(self):
        assert interface_of(WeatherService).methods[
            "remaining_credits"].returns == "int"

    def test_oneway_flag(self):
        assert interface_of(WeatherService).methods["feed"].oneway

    def test_undecorated_class_rejected(self):
        class Plain:
            pass

        with pytest.raises(IdlError):
            interface_of(Plain)

    def test_empty_interface_rejected(self):
        with pytest.raises(IdlError):
            @remote_interface()
            class Empty:
                pass

    def test_varargs_rejected(self):
        with pytest.raises(IdlError):
            @remote_interface()
            class Bad:
                @remote_method
                def m(self, *args):
                    pass


class TestViews:
    def test_apply(self):
        view = InterfaceView("ReadOnly", ["get_map"])
        spec = view.apply(interface_of(WeatherService))
        assert spec.name == "ReadOnly"
        assert spec.method_names() == ("get_map",)

    def test_union(self):
        a = InterfaceView("A", ["get_map"])
        b = InterfaceView("B", ["feed"])
        u = (a | b).apply(interface_of(WeatherService))
        assert set(u.method_names()) == {"feed", "get_map"}

    def test_empty_view_rejected(self):
        with pytest.raises(IdlError):
            InterfaceView("E", [])


IDL_TEXT = """
// weather station interfaces
interface Weather {
    array get_map(string region, int resolution);
    oneway void feed(any data);
    int remaining_credits();
};

/* a second one */
interface Admin {
    void shutdown(grace);
};
"""


class TestParser:
    def test_parse_interfaces(self):
        specs = parse_idl(IDL_TEXT)
        assert set(specs) == {"Weather", "Admin"}
        weather = specs["Weather"]
        assert weather.methods["get_map"].params[0] == \
            ParamSpec("region", "string")
        assert weather.methods["feed"].oneway
        assert weather.methods["remaining_credits"].arity == 0

    def test_untyped_param_defaults_any(self):
        specs = parse_idl(IDL_TEXT)
        assert specs["Admin"].methods["shutdown"].params[0].type == "any"

    def test_empty_input(self):
        assert parse_idl("") == {}

    @pytest.mark.parametrize("bad", [
        "interface X { }",                        # no methods
        "interface X { int m() }",                # missing semicolon
        "interface X { bogus m(); };",            # unknown return type
        "interface X { oneway int m(); };",       # oneway non-void
        "interface X { int m(); int m(); };",     # duplicate method
        "interface X { int m(); }; interface X { int n(); };",
        "interface X { int m(%); };",             # bad character
        "interface X { int m(",                   # truncated
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(IdlSyntaxError):
            parse_idl(bad)

    def test_parsed_matches_decorated(self):
        """The textual and decorator definitions of the same interface
        produce interchangeable specs."""
        parsed = parse_idl(IDL_TEXT)["Weather"]
        decorated = interface_of(WeatherService)
        assert parsed.method_names() == decorated.method_names()


class TestStubs:
    def make(self, calls):
        spec = interface_of(WeatherService)
        cls = make_stub_class(spec)
        return cls(lambda m, a, ow: calls.append((m, a, ow)) or "R", spec)

    def test_methods_forward(self):
        calls = []
        stub = self.make(calls)
        assert stub.get_map("midwest", 4) == "R"
        assert calls == [("get_map", ("midwest", 4), False)]

    def test_oneway_forward(self):
        calls = []
        stub = self.make(calls)
        stub.feed({"x": 1})
        assert calls[0][2] is True

    def test_arity_checked(self):
        stub = self.make([])
        with pytest.raises(InterfaceError):
            stub.get_map("only-one")

    def test_stub_class_cached(self):
        spec = interface_of(WeatherService)
        assert make_stub_class(spec) is make_stub_class(spec)

    def test_docstring_propagates(self):
        spec = interface_of(WeatherService)
        cls = make_stub_class(spec)
        assert "weather map" in cls.get_map.__doc__

    def test_stub_exposes_interface(self):
        calls = []
        stub = self.make(calls)
        assert stub.interface.name == "Weather"
