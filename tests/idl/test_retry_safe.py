"""The ``retry_safe`` method attribute: decorator, textual IDL, wire."""

from repro.idl import (
    InterfaceSpec,
    interface_of,
    parse_idl,
    remote_interface,
    remote_method,
)


@remote_interface("SafeStore")
class SafeStore:
    @remote_method(retry_safe=True)
    def put(self, v: int) -> int:
        return v

    @remote_method
    def append(self, v: int) -> int:
        return v


class TestDecorator:
    def test_marking(self):
        spec = interface_of(SafeStore)
        assert spec.methods["put"].retry_safe
        assert not spec.methods["append"].retry_safe


class TestWire:
    def test_roundtrip_preserves_flag(self):
        spec = interface_of(SafeStore)
        again = InterfaceSpec.from_wire(spec.to_wire())
        assert again.methods["put"].retry_safe
        assert not again.methods["append"].retry_safe

    def test_old_wire_defaults_unsafe(self):
        """ORs marshalled before the flag existed must decode with the
        conservative default."""
        wire = interface_of(SafeStore).to_wire()
        for m in wire["methods"]:
            m.pop("retry_safe", None)
        spec = InterfaceSpec.from_wire(wire)
        assert not any(m.retry_safe for m in spec.methods.values())


class TestParser:
    IDL = """
    interface Store {
        idempotent int put(int v);
        int append(int v);
        oneway void poke();
    };
    """

    def test_idempotent_modifier(self):
        spec = parse_idl(self.IDL)["Store"]
        assert spec.methods["put"].retry_safe
        assert not spec.methods["append"].retry_safe
        assert not spec.methods["poke"].retry_safe
        assert spec.methods["poke"].oneway
