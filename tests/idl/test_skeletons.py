"""Tests for servant skeletons and export-time validation."""

import pytest

from repro.core import ORB
from repro.exceptions import IdlError
from repro.idl import (
    interface_of,
    make_servant_base,
    parse_idl,
    validate_servant,
)
from repro.idl.types import InterfaceSpec, MethodSpec, ParamSpec

WEATHER_IDL = """
interface Weather {
    array get_map(string region, int resolution);
    int remaining_credits();
};
"""

SPEC = parse_idl(WEATHER_IDL)["Weather"]


class GoodServant:
    def get_map(self, region, resolution):
        return [region, resolution]

    def remaining_credits(self):
        return 7


class TestValidateServant:
    def test_accepts_conforming(self):
        validate_servant(GoodServant(), SPEC)

    def test_missing_method(self):
        class Missing:
            def get_map(self, region, resolution):
                return []

        with pytest.raises(IdlError) as err:
            validate_servant(Missing(), SPEC)
        assert "remaining_credits" in str(err.value)

    def test_not_callable(self):
        class NotCallable(GoodServant):
            remaining_credits = 42

        with pytest.raises(IdlError):
            validate_servant(NotCallable(), SPEC)

    def test_arity_mismatch(self):
        class WrongArity(GoodServant):
            def get_map(self):
                return []

        with pytest.raises(IdlError) as err:
            validate_servant(WrongArity(), SPEC)
        assert "get_map" in str(err.value)

    def test_defaults_and_varargs_ok(self):
        class Flexible:
            def get_map(self, region, resolution=1, extra=None):
                return []

            def remaining_credits(self, *args):
                return 0

        validate_servant(Flexible(), SPEC)

    def test_multiple_problems_reported(self):
        class Bad:
            pass

        with pytest.raises(IdlError) as err:
            validate_servant(Bad(), SPEC)
        message = str(err.value)
        assert "get_map" in message and "remaining_credits" in message


class TestMakeServantBase:
    def test_base_is_abstract(self):
        Base = make_servant_base(SPEC)
        with pytest.raises(TypeError):
            Base()

    def test_subclass_must_implement_all(self):
        Base = make_servant_base(SPEC)

        class Partial(Base):
            def get_map(self, region, resolution):
                return []

        with pytest.raises(TypeError):
            Partial()

    def test_complete_subclass_instantiates(self):
        Base = make_servant_base(SPEC)

        class Complete(Base):
            def get_map(self, region, resolution):
                return [1]

            def remaining_credits(self):
                return 3

        servant = Complete()
        assert servant.remaining_credits() == 3

    def test_carries_interface(self):
        Base = make_servant_base(SPEC)
        assert interface_of(Base).name == "Weather"

    def test_cached(self):
        assert make_servant_base(SPEC) is make_servant_base(SPEC)


class TestIdlToExportPipeline:
    def test_parse_implement_export_invoke(self):
        """The full textual-IDL loop: parse -> skeleton -> implement ->
        export -> invoke through a narrow()ed stub."""
        Base = make_servant_base(SPEC)

        class Impl(Base):
            def get_map(self, region, resolution):
                return [[region] * resolution]

            def remaining_credits(self):
                return 11

        orb = ORB()
        server = orb.context("idl-server")
        client = orb.context("idl-client")
        gp = client.bind(server.export(Impl()))
        stub = gp.narrow()
        assert stub.remaining_credits() == 11
        assert stub.get_map("mw", 2) == [["mw", "mw"]]
        orb.shutdown()

    def test_export_rejects_nonconforming_servant(self):
        orb = ORB()
        server = orb.context("strict-server")

        class Liar:
            pass

        with pytest.raises(IdlError):
            server.export(Liar(), interface=SPEC)
        orb.shutdown()

    def test_export_validates_against_view_only(self):
        """A servant only needs the methods the *view* exposes."""
        spec = InterfaceSpec("Wide", methods={
            "a": MethodSpec("a"),
            "b": MethodSpec("b", params=(ParamSpec("x"),)),
        })

        class OnlyA:
            def a(self):
                return "a"

        orb = ORB()
        server = orb.context("view-server")
        client = orb.context("view-client")
        oref = server.export(OnlyA(), interface=spec, view=["a"])
        assert client.bind(oref).invoke("a") == "a"
        with pytest.raises(IdlError):
            server.export(OnlyA(), interface=spec)  # full spec: missing b
        orb.shutdown()
