"""Tests for IDL run-time type enforcement."""

import numpy as np
import pytest

from repro.core import ORB
from repro.core.objref import ObjectReference
from repro.exceptions import InterfaceError, RemoteException
from repro.idl import remote_interface, remote_method
from repro.idl.typecheck import check_args, value_fits
from repro.idl.types import MethodSpec, ParamSpec


class TestValueFits:
    @pytest.mark.parametrize("value,wire_type,expected", [
        (None, "any", True),
        (object(), "any", True),
        (None, "void", True),
        (0, "void", False),
        (True, "bool", True),
        (np.bool_(True), "bool", True),
        (1, "bool", False),
        (5, "int", True),
        (np.int32(5), "int", True),
        (True, "int", False),          # bools are not ints on the wire
        (5.0, "int", False),
        (5.0, "float", True),
        (5, "float", True),            # numeric courtesy
        (np.float64(1.5), "float", True),
        (True, "float", False),
        ("x", "string", True),
        (b"x", "string", False),
        (b"x", "bytes", True),
        (bytearray(b"x"), "bytes", True),
        ("x", "bytes", False),
        (np.zeros(3), "array", True),
        ([1, 2], "array", True),
        ((1, 2), "array", True),
        ({"a": 1}, "array", False),
        ([1], "list", True),
        ({"a": 1}, "dict", True),
        ([1], "dict", False),
    ])
    def test_scalar_matrix(self, value, wire_type, expected):
        assert value_fits(value, wire_type) is expected

    def test_objref(self):
        from repro.idl.types import InterfaceSpec

        oref = ObjectReference(
            object_id="o", context_id="c",
            interface=InterfaceSpec("I", {"m": MethodSpec("m")}))
        assert value_fits(oref, "objref")
        assert not value_fits("not a ref", "objref")

    def test_unknown_type_permissive(self):
        assert value_fits(object(), "hologram")


class TestCheckArgs:
    SPEC = MethodSpec("m", params=(
        ParamSpec("a", "int"), ParamSpec("b", "string"),
        ParamSpec("c", "any")))

    def test_good(self):
        check_args(self.SPEC, (1, "x", object()))

    def test_wrong_arity(self):
        with pytest.raises(InterfaceError):
            check_args(self.SPEC, (1, "x"))

    def test_wrong_type_named_in_error(self):
        with pytest.raises(InterfaceError) as err:
            check_args(self.SPEC, (1, 2, 3))
        assert "'b'" in str(err.value)
        assert "string" in str(err.value)


@remote_interface("Typed")
class TypedService:
    @remote_method
    def scale(self, values: list, factor: float):
        return [v * factor for v in values]

    @remote_method
    def label(self, name: str) -> str:
        return f"[{name}]"


class TestDispatchEnforcement:
    @pytest.fixture
    def gp(self):
        orb = ORB()
        server = orb.context()
        client = orb.context()
        yield client.bind(server.export(TypedService()))
        orb.shutdown()

    def test_conforming_call(self, gp):
        assert gp.invoke("scale", [1.0, 2.0], 2.0) == [2.0, 4.0]
        assert gp.invoke("label", "x") == "[x]"

    def test_int_accepted_for_float(self, gp):
        assert gp.invoke("scale", [1.0], 3) == [3.0]

    def test_wrong_type_rejected_remotely(self, gp):
        with pytest.raises(RemoteException) as err:
            gp.invoke("label", 42)
        assert err.value.remote_type == "InterfaceError"

    def test_wrong_aggregate_rejected(self, gp):
        with pytest.raises(RemoteException) as err:
            gp.invoke("scale", "not-a-list", 1.0)
        assert err.value.remote_type == "InterfaceError"

    def test_servant_never_ran(self, gp):
        """The type error fires before the servant method."""
        calls = []

        class Spy(TypedService):
            def label(self, name):
                calls.append(name)
                return name

        orb = ORB()
        server = orb.context()
        client = orb.context()
        g = client.bind(server.export(Spy()))
        with pytest.raises(RemoteException):
            g.invoke("label", 3.5)
        assert calls == []
        orb.shutdown()
