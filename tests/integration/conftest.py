"""Integration-test fixtures: reuse the core suite's ORB worlds."""

from tests.core.conftest import (  # noqa: F401 - fixture re-export
    sim_world,
    wall_orb,
    wall_pair,
)
