"""Genuine isolation tests: separate ORBs and separate OS processes.

Everything else in the suite runs contexts inside one ORB.  Here we show
the wire formats and the TCP transport genuinely decouple the two sides:

* two independent ORB instances in one process, sharing nothing but a
  marshalled OR and a TCP port;
* a *separate Python process* serving an object, reached from the test
  process — the full cross-process RPC path the 1999 system ran.
"""

import subprocess
import sys
import textwrap

import pytest

from repro.core import ORB
from repro.core.context import Placement
from repro.core.objref import ObjectReference

from tests.core.conftest import Counter


class TestCrossOrb:
    def test_two_orbs_over_tcp(self):
        """Client ORB and server ORB share no registries: only the OR
        bytes and the socket connect them."""
        server_orb = ORB()
        client_orb = ORB()
        try:
            server_ctx = server_orb.context(
                "srv", enable_tcp=True,
                placement=Placement("srv-host", "srv-lan", "srv-site"))
            client_ctx = client_orb.context(
                "cli", enable_tcp=True,
                placement=Placement("cli-host", "cli-lan", "cli-site"))

            oref_bytes = server_ctx.export(Counter()).to_bytes()
            # Strip non-TCP addresses: the other ORB's inproc/shm
            # registries are unreachable from this ORB.
            oref = ObjectReference.from_bytes(oref_bytes)
            for entry in oref.protocols:
                entry.proto_data["addresses"] = [
                    a for a in entry.proto_data.get("addresses", [])
                    if a.get("transport") == "tcp"]

            gp = client_ctx.bind(oref)
            assert gp.selected_proto_id == "nexus"
            assert gp.invoke("add", 7) == 7
            assert gp.invoke("get") == 7
        finally:
            server_orb.shutdown()
            client_orb.shutdown()


SERVER_SCRIPT = textwrap.dedent("""
    import sys
    from repro.core import ORB
    from repro.core.context import Placement
    from repro.idl import remote_interface, remote_method

    @remote_interface("Counter")
    class Counter:
        def __init__(self):
            self.n = 0

        @remote_method
        def add(self, k: int) -> int:
            self.n += k
            return self.n

        @remote_method
        def shutdown_probe(self) -> str:
            return "alive"

    orb = ORB()
    ctx = orb.context("remote-process", enable_tcp=True,
                      placement=Placement("other-host", "other-lan",
                                          "other-site"))
    oref = ctx.export(Counter())
    # Hand the OR to the parent over stdout (hex to stay line-clean).
    sys.stdout.write(oref.to_bytes().hex() + "\\n")
    sys.stdout.flush()
    # Serve until the parent closes stdin.
    sys.stdin.read()
""")


class TestCrossProcess:
    def test_rpc_into_another_process(self):
        proc = subprocess.Popen(
            [sys.executable, "-c", SERVER_SCRIPT],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
        try:
            line = proc.stdout.readline().strip()
            assert line, "server process produced no OR"
            oref = ObjectReference.from_bytes(bytes.fromhex(line))
            # Only the TCP address can cross the process boundary.
            for entry in oref.protocols:
                entry.proto_data["addresses"] = [
                    a for a in entry.proto_data.get("addresses", [])
                    if a.get("transport") == "tcp"]

            orb = ORB()
            client = orb.context("parent", enable_tcp=True)
            gp = client.bind(oref)
            assert gp.selected_proto_id == "nexus"
            assert gp.invoke("add", 5) == 5
            assert gp.invoke("add", 5) == 10
            assert gp.invoke("shutdown_probe") == "alive"
            orb.shutdown()
        finally:
            proc.stdin.close()
            proc.wait(timeout=10)
