"""Directory crash matrix against real endpoint processes (tier-2,
``-m proc``).

The acceptance scenario for the replicated directory: three worker
processes each host a :class:`DirectoryReplica`, elect over kernel TCP,
and take a SIGKILL of the *leader* in the middle of a migration sweep
while a resolve workload measures availability.  A follower kill rides
along as the cheap half of the matrix.
"""

import threading
import time

import pytest

from repro.cluster.procs import NodeSpec, ProcCluster, ProcRun
from repro.directory import join_proc_directory
from repro.exceptions import HpcError
from repro.faults.process import kill_node
from repro.metrics.curves import assert_degradation

from tests.integration.test_proc_cluster import assert_all_reaped

pytestmark = pytest.mark.proc

LEASE = 1.2
ELECTION_HI = 1.2


def directory_specs(n=3):
    return [NodeSpec(f"n{i}", ("w0",),
                     {"directory": "1", "dir_seed": "42",
                      "dir_stream": str(i)})
            for i in range(n)]


def wait_for_leader(client, budget=15.0):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        leader = client.leader()
        if leader:
            return leader
        time.sleep(0.1)
    raise AssertionError(f"no directory leader within {budget}s")


class TestDirectoryCrashMatrix:
    def test_sigkill_leader_mid_migration_sweep(self):
        with ProcCluster(directory_specs()) as cluster:
            client = join_proc_directory(cluster)
            try:
                first = wait_for_leader(client)
                target = cluster.nodes["n0"].orefs["w0"]
                for i in range(3):
                    client.bind(f"svc/{i}", target)

                # A background migration sweep keeps republishing the
                # object under fresh incarnations — the write traffic
                # the kill lands in the middle of.
                stop = threading.Event()
                sweeps = {"before": 0, "after": 0, "failed": 0}
                stamps = {}

                def sweep_loop():
                    hop = 0
                    while not stop.is_set():
                        hop += 1
                        moved = target.clone()
                        moved.version = target.version + hop
                        try:
                            rebound = client.rebind_object(
                                target.object_id, moved)
                            assert rebound  # the aliases followed
                            phase = "after" if "kill" in stamps \
                                else "before"
                            sweeps[phase] += 1
                        except HpcError:
                            sweeps["failed"] += 1
                        time.sleep(0.15)

                def watch_loop():
                    while not stop.is_set():
                        if "kill" in stamps and "new" not in stamps:
                            try:
                                cur = client.leader()
                            except HpcError:
                                cur = ""
                            if cur and cur != first:
                                stamps["new"] = (time.monotonic(), cur)
                        time.sleep(0.05)

                def kill_leader():
                    stamps["kill"] = time.monotonic()
                    kill_node(cluster, first)()

                run = ProcRun(duration=6.0, threads=4,
                              bucket_seconds=0.5,
                              op=lambda c: c.resolve("svc/0", fresh=True))
                run.schedule(
                    1.2, lambda: threading.Thread(
                        target=sweep_loop, daemon=True).start(),
                    "start migration sweep")
                run.schedule(1.5, kill_leader, "SIGKILL directory leader")
                watcher = threading.Thread(target=watch_loop, daemon=True)
                watcher.start()
                report = run.run(cluster, [client])
                stop.set()
                watcher.join(timeout=5.0)

                # A new leader took over within the lease + election
                # budget of the moment the old one died.
                assert "new" in stamps, \
                    f"no new leader after killing {first}"
                took = stamps["new"][0] - stamps["kill"]
                assert stamps["new"][1] != first
                assert took <= LEASE + ELECTION_HI + 2.0, \
                    f"failover took {took:.2f}s"

                # Resolution availability through the crash: >= 80%
                # overall and the degradation envelope recovers.
                assert report.total > 0
                assert report.ok / report.total >= 0.8
                assert_degradation(report.curve, recover_within=3.0,
                                   recovered_fraction=0.8,
                                   baseline_buckets=2)
                # The sweep ran on both sides of the crash: the new
                # leader accepted migration publishes too.
                assert sweeps["before"] >= 1
                assert sweeps["after"] >= 1
                # The kill registered as a real SIGKILL exit.
                counters = report.metrics["counters"]
                assert counters["proc_exits.sigkill"] >= 1.0
                # The survivors agree on the swept binding.
                got = client.resolve("svc/0", fresh=True)
                assert got.object_id == target.object_id
                assert got.version > target.version
            finally:
                client.close()
        assert_all_reaped(cluster)

    def test_sigkill_follower_is_a_non_event(self):
        """Killing a non-leader must neither change the leader nor
        interrupt writes: quorum is still 2 of 3."""
        with ProcCluster(directory_specs()) as cluster:
            client = join_proc_directory(cluster)
            try:
                first = wait_for_leader(client)
                target = cluster.nodes["n0"].orefs["w0"]
                client.bind("svc/main", target)
                follower = next(n for n in sorted(cluster.nodes)
                                if n != first)
                cluster.kill(follower)
                time.sleep(0.5)
                assert client.leader() == first
                for i in range(3):
                    assert client.bind(f"post/{i}", target) == 1
                    assert client.resolve(
                        f"post/{i}", fresh=True).object_id == \
                        target.object_id
            finally:
                client.close()
        assert_all_reaped(cluster)
