"""Encoding matrix: every protocol shape over both wire encodings.

The OR advertises the server's encoding per entry; clients must follow
it.  This drives plain, glue, and shm protocols over XDR- and
CDR-encoding servers, including capability stacks (whose sub-headers are
always XDR by specification, independent of the payload encoding).
"""

import numpy as np
import pytest

from repro.core import ORB
from repro.core.capabilities import (
    CallQuotaCapability,
    EncryptionCapability,
    IntegrityCapability,
)
from repro.core.context import Placement

from tests.core.conftest import Counter


@pytest.fixture(params=["xdr", "cdr"])
def encoding(request):
    return request.param


@pytest.fixture
def worlds(wall_orb, encoding):
    server = wall_orb.context(f"enc-s-{encoding}", encoding=encoding,
                              placement=Placement("sm", "sl", "ss"))
    client = wall_orb.context(f"enc-c-{encoding}",
                              placement=Placement("cm", "cl", "cs"))
    local_client = wall_orb.context(f"enc-l-{encoding}",
                                    placement=Placement("sm", "sl", "ss"))
    return server, client, local_client


class TestEncodingMatrix:
    def test_plain_nexus(self, worlds, encoding):
        server, client, _ = worlds
        gp = client.bind(server.export(Counter()))
        assert gp.oref.entry("nexus").proto_data["encoding"] == encoding
        assert gp.invoke("add", 3) == 3

    def test_shm(self, worlds):
        server, _, local_client = worlds
        gp = local_client.bind(server.export(Counter()))
        assert gp.selected_proto_id == "shm"
        assert gp.invoke("add", 2) == 2

    def test_glue_stack(self, worlds):
        server, client, _ = worlds
        oref = server.export(Counter(), glue_stacks=[[
            CallQuotaCapability.for_calls(10, applicability="always"),
            EncryptionCapability.server_descriptor(
                key_seed=4, applicability="always"),
            IntegrityCapability.checksum(applicability="always"),
        ]])
        gp = client.bind(oref)
        assert gp.selected_proto_id == "glue"
        for i in range(3):
            assert gp.invoke("add", 1) == i + 1

    def test_array_payloads(self, worlds):
        server, client, _ = worlds
        gp = client.bind(server.export(Counter()))
        arr = np.arange(4096, dtype=np.float64)
        np.testing.assert_array_equal(gp.invoke("echo", arr), arr)

    def test_exceptions_cross_encodings(self, worlds):
        from repro.exceptions import RemoteException

        server, client, _ = worlds
        gp = client.bind(server.export(Counter()))
        with pytest.raises(RemoteException) as err:
            gp.invoke("fail", "boom")
        assert err.value.remote_type == "RuntimeError"

    def test_migration_between_encodings(self, wall_orb):
        """An object migrating from an XDR context to a CDR context:
        clients re-select and re-marshal with the new encoding."""
        from repro.core.migration import migrate

        xdr_ctx = wall_orb.context("mx", encoding="xdr",
                                   placement=Placement("a", "al", "as"))
        cdr_ctx = wall_orb.context("mc", encoding="cdr",
                                   placement=Placement("b", "bl", "bs"))
        client = wall_orb.context("mcl",
                                  placement=Placement("c", "cl", "cs"))
        oref = xdr_ctx.export(Counter())
        gp = client.bind(oref)
        gp.invoke("add", 1)
        migrate(xdr_ctx, oref.object_id, cdr_ctx)
        assert gp.invoke("add", 1) == 2
        assert gp.oref.entry("nexus").proto_data["encoding"] == "cdr"
