"""Failure injection across the stack.

Distributed systems are defined by how they fail.  These tests corrupt
wires, kill peers, exhaust budgets, and desynchronize state, asserting
that every failure surfaces as the *right* exception at the *right*
place — never a hang, never silent corruption.
"""

import pytest

from repro.core import ORB
from repro.core.capabilities import (
    CallQuotaCapability,
    EncryptionCapability,
    IntegrityCapability,
)
from repro.core.context import Placement
from repro.core.glue import (
    decode_glue_envelope,
    encode_glue_envelope,
)
from repro.exceptions import (
    CapabilityError,
    HpcError,
    NoApplicableProtocolError,
    ProtocolError,
    RemoteException,
)

from tests.core.conftest import Counter


@pytest.fixture
def remote_pair(wall_orb):
    server = wall_orb.context("srv", placement=Placement(
        "s-box", "s-lan", "site-a"))
    client = wall_orb.context("cli", placement=Placement(
        "c-box", "c-lan", "site-b"))
    return server, client


class TestWireCorruption:
    def test_integrity_capability_catches_payload_corruption(
            self, remote_pair):
        """A corrupting 'network' is caught by the integrity capability
        server-side and surfaced as a remote IntegrityError."""
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [IntegrityCapability.checksum(applicability="always")]])
        gp = client.bind(oref)
        gp.invoke("add", 1)  # settle the connection

        # Wrap the live glue client so every outgoing envelope has one
        # payload byte flipped after capability processing.
        glue_client = gp._client_for(gp.select_protocol())
        original = glue_client.inner.call_raw

        def corrupting_call(handler, payload, oneway=False, **kwargs):
            glue_id, cap_types, body = decode_glue_envelope(payload)
            body = bytearray(body)
            body[len(body) // 2] ^= 0xFF
            return original(handler,
                            encode_glue_envelope(glue_id, cap_types,
                                                 bytes(body)), oneway)

        glue_client.inner.call_raw = corrupting_call
        with pytest.raises(RemoteException) as err:
            gp.invoke("add", 1)
        assert err.value.remote_type == "IntegrityError"

    def test_encryption_rejects_corrupt_wire(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [IntegrityCapability.checksum(applicability="always"),
             EncryptionCapability.server_descriptor(
                 key_seed=3, applicability="always")]])
        gp = client.bind(oref)
        gp.invoke("add", 1)
        glue_client = gp._client_for(gp.select_protocol())
        original = glue_client.inner.call_raw

        def truncating_call(handler, payload, oneway=False, **kwargs):
            glue_id, cap_types, body = decode_glue_envelope(payload)
            return original(handler,
                            encode_glue_envelope(glue_id, cap_types,
                                                 body[:-8]), oneway)

        glue_client.inner.call_raw = truncating_call
        with pytest.raises(RemoteException) as err:
            gp.invoke("add", 1)
        # Whatever layer notices first, it is a loud capability error.
        assert err.value.remote_type in ("DecryptionError",
                                         "IntegrityError",
                                         "MarshalError",
                                         "BufferUnderflowError")

    def test_mismatched_stack_announcement(self, remote_pair):
        """A client lying about its capability list is refused."""
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(10, applicability="always")]])
        gp = client.bind(oref)
        glue_client = gp._client_for(gp.select_protocol())
        original = glue_client.inner.call_raw

        def lying_call(handler, payload, oneway=False, **kwargs):
            glue_id, _cap_types, body = decode_glue_envelope(payload)
            return original(handler,
                            encode_glue_envelope(glue_id,
                                                 ["quota", "encryption"],
                                                 body), oneway)

        glue_client.inner.call_raw = lying_call
        with pytest.raises(RemoteException) as err:
            gp.invoke("get")
        assert err.value.remote_type == "CapabilityError"


class TestLifecycleFailures:
    def test_unexported_object(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter())
        gp = client.bind(oref)
        assert gp.invoke("add", 1) == 1
        server.unexport(oref.object_id)
        with pytest.raises(RemoteException) as err:
            gp.invoke("get")
        assert err.value.remote_type == "ObjectNotFoundError"

    def test_stopped_context_times_out_cleanly(self, wall_orb):
        server = wall_orb.context("dying")
        client = wall_orb.context("watcher")
        client.call_timeout = 0.3
        oref = server.export(Counter())
        gp = client.bind(oref)
        assert gp.invoke("add", 1) == 1
        server.stop()
        with pytest.raises(HpcError):
            gp.invoke("get")

    def test_double_export_same_id_rejected(self, remote_pair):
        server, _ = remote_pair
        server.export(Counter(), object_id="fixed")
        with pytest.raises(HpcError):
            server.export(Counter(), object_id="fixed")

    def test_empty_protocol_table_rejected(self, remote_pair):
        server, _ = remote_pair
        with pytest.raises(HpcError):
            server.export(Counter(), include_shm=False,
                          include_plain=False)

    def test_forward_hop_limit(self, remote_pair):
        """A forwarding cycle must terminate with an error, not spin."""
        server, client = remote_pair
        oref = server.export(Counter())
        gp = client.bind(oref)
        # Install a forwarding record that points back at itself.
        server.servants.pop(oref.object_id)
        server.forwards[oref.object_id] = oref.clone()
        from repro.exceptions import RemoteInvocationError

        with pytest.raises(RemoteInvocationError):
            gp.invoke("get")


class TestBudgetExhaustion:
    def test_quota_error_is_precise(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(3, applicability="always")]])
        gp = client.bind(oref)
        for i in range(3):
            gp.invoke("add", 1)
        from repro.exceptions import QuotaExceededError

        with pytest.raises(QuotaExceededError):
            gp.invoke("add", 1)
        # The failed attempt must not have reached the servant.
        oref2 = server.export(Counter(), object_id="probe")
        assert server.servants[oref.object_id].instance.n == 3

    def test_selection_failure_lists_reasons(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter())
        gp = client.bind(oref)
        gp.pool.disallow("nexus")
        # shm inapplicable (different machines), nexus banned by pool.
        with pytest.raises(NoApplicableProtocolError) as err:
            gp.invoke("get")
        message = str(err.value)
        assert "not applicable" in message or "not in pool" in message


class TestControlSurfaceFailures:
    def test_bad_control_op(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter())
        gp = client.bind(oref)
        entry = gp.oref.entry("nexus")
        proto_client = gp._client_for(entry)
        m = proto_client.marshaller
        reply = m.loads(proto_client.call_raw(
            "hpc.control", m.dumps({"op": "self-destruct"})))
        assert reply["ok"] is False
        assert "unknown op" in reply["error"]

    def test_make_glue_with_bad_capability(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter())
        gp = client.bind(oref)
        with pytest.raises(HpcError):
            gp.add_capability_stack([{"type": "no-such-capability"}])

    def test_dynamic_stack_without_nexus_entry(self, remote_pair):
        server, client = remote_pair
        oref = server.export(Counter())
        gp = client.bind(oref)
        gp.drop_protocol("nexus")
        with pytest.raises(HpcError):
            gp.add_capability_stack(
                [CallQuotaCapability.for_calls(1)])
