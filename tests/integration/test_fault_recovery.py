"""End-to-end fault recovery in the simulated world.

The acceptance scenario for the resilience layer: a seeded
:class:`FaultPlan` kills the preferred protocol mid-run, the invocation
succeeds through the next applicable protocol-table entry, the hook
trail shows ``failover`` followed by a successful request — and the same
seed reproduces the identical trail on a fresh world.
"""

import pytest

from repro.core import ORB
from repro.core.instrumentation import HookBus
from repro.core.resilience import RetryPolicy
from repro.exceptions import HpcError
from repro.faults import FaultPlan, FaultyTransport
from repro.idl import remote_interface, remote_method
from repro.simnet import NetworkSimulator, paper_testbed

from tests.core.conftest import Counter


@remote_interface("KvCell")
class KvCell:
    """Single idempotent cell for the probabilistic-loss runs."""

    def __init__(self):
        self.value = 0

    @remote_method(retry_safe=True)
    def put(self, v: int) -> int:
        self.value = v
        return self.value


def watch(gp):
    """Record the GP's recovery trail: (event, protocol) tuples."""
    trail = []
    gp.hooks.on("retry",
                lambda e: trail.append(("retry", e.data["proto_id"])))
    gp.hooks.on("failover",
                lambda e: trail.append(("failover", e.data["from_proto"],
                                        e.data["to_proto"])))
    gp.hooks.on("request",
                lambda e: trail.append((f"request:{e.data['outcome']}",
                                        e.data["proto_id"])))
    return trail


def run_failover_scenario(seed):
    """Same-machine client/server: ``shm`` preferred, ``nexus`` as the
    fallback entry.  The plan disconnects the shm path after its first
    message."""
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    server = orb.context("server", machine=tb.m0)
    plan = FaultPlan(seed=seed, hooks=HookBus())
    plan.disconnect(label="sim-shm", point="send", after=1)
    client.transports["sim-shm"] = FaultyTransport(
        client.transports["sim-shm"], plan, clock=client.clock)

    servant = Counter()
    gp = client.bind(server.export(servant))
    trail = watch(gp)
    results = [gp.invoke("get"), gp.invoke("add", 1)]
    orb.shutdown()
    return trail, list(plan.injected), results, servant.n


class TestProtocolFailover:
    def test_preferred_protocol_dies_midrun(self):
        trail, injected, results, n = run_failover_scenario(seed=11)
        assert results == [0, 1]
        assert n == 1                        # executed exactly once
        # Call 1 rides the preferred shm entry; call 2 loses it, pays
        # one retry, fails over to nexus, and completes.
        assert trail == [
            ("request:ok", "shm"),
            ("request:error", "shm"),
            ("retry", "shm"),
            ("failover", "shm", "nexus"),
            ("request:ok", "nexus"),
        ]
        # Two firings: the transparent reconnect ate the first.
        assert injected == [("disconnect", "sim-shm:send")] * 2

    def test_same_seed_identical_trail(self):
        assert run_failover_scenario(seed=11) == run_failover_scenario(
            seed=11)


def run_lossy_scenario(seed, calls=20):
    """Cross-machine client with probabilistic reply loss: every draw
    comes from the plan's and the policy's seeded PRNGs, so the whole
    recovery history is a pure function of the seed."""
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    server = orb.context("server", machine=tb.m1)
    plan = FaultPlan(seed=seed, hooks=HookBus())
    plan.drop(probability=0.35, src="M1", dst="M0")
    sim.fault_plan = plan

    servant = KvCell()
    gp = client.bind(server.export(servant),
                     retry_policy=RetryPolicy(max_attempts=5, seed=seed))
    trail = watch(gp)
    outcomes = []
    for i in range(calls):
        try:
            outcomes.append(("ok", gp.invoke("put", i)))
        except HpcError as exc:
            outcomes.append(("err", type(exc).__name__))
    clock_end = client.clock.now()
    orb.shutdown()
    return trail, list(plan.injected), outcomes, clock_end


class TestSeededLossDeterminism:
    def test_same_seed_same_history(self):
        first = run_lossy_scenario(seed=42)
        second = run_lossy_scenario(seed=42)
        assert first == second

    def test_recovery_actually_happened(self):
        trail, injected, outcomes, _t = run_lossy_scenario(seed=42)
        assert any(kind == "retry" for kind, *_ in trail)
        assert any(o[0] == "ok" for o in outcomes)
        assert injected                      # faults really fired

    def test_different_seed_diverges(self):
        assert run_lossy_scenario(seed=42)[1] != \
            run_lossy_scenario(seed=43)[1]
