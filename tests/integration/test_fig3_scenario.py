"""Integration test of the paper's Figure 3 scenario.

Server object S0 has two clients: P1 on the server's own LAN and P2 on
a different LAN.  The OR carries (a) a glue protocol with one
authentication capability whose applicability is *different-lan*, and
(b) a plain Nexus protocol, with the glue preferred.

* Initially, P1 (local) selects Nexus — no authentication; P2 (remote)
  selects the glue protocol — authenticated requests.
* Then the object migrates onto P2's LAN and the roles flip: "For P2,
  the authentication capability becomes non-applicable, and so it
  chooses the Nexus based protocol; while for P1, the authentication
  capability is now applicable and the glue protocol is chosen thus
  leading to authenticated communication."
"""

import pytest

from repro.core import ORB
from repro.core.capabilities import AuthenticationCapability
from repro.core.migration import migrate
from repro.security.keys import Principal
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology

from tests.core.conftest import Counter


@pytest.fixture
def world():
    """Two LANs on one site; P1 shares LAN-1 with the server, P2 is on
    LAN-2 (the paper's drawing has them on one campus)."""
    topo = Topology()
    site = topo.add_site("campus")
    lan1 = topo.add_lan("lan-1", site, ETHERNET_10)
    lan2 = topo.add_lan("lan-2", site, ETHERNET_10)
    topo.connect(lan1, lan2, ETHERNET_10)
    topo.add_machine("server-box", lan1)
    topo.add_machine("p1-box", lan1)
    topo.add_machine("p2-box", lan2)
    topo.add_machine("server-box-2", lan2)

    sim = NetworkSimulator(topo)
    orb = ORB(simulator=sim)
    server = orb.context("server", machine="server-box")
    server2 = orb.context("server2", machine="server-box-2")
    p1 = orb.context("p1", machine="p1-box")
    p2 = orb.context("p2", machine="p2-box")
    yield orb, server, server2, p1, p2
    orb.shutdown()


def export_s0(server, clients):
    """One auth key per client principal, one shared OR."""
    principals = {}
    for ctx in clients:
        principal = Principal(ctx.id, "campus")
        key = server.keystore.generate(principal)
        ctx.keystore.install(principal, key)
        principals[ctx.id] = principal
    # A single auth capability per client would be per-OR in a real
    # deployment; here each client authenticates as itself through the
    # same stack type, so export one stack per principal.
    oref = server.export(Counter(), glue_stacks=[
        [AuthenticationCapability.for_principal(Principal(ctx.id,
                                                          "campus"))]
        for ctx in clients])
    return oref, principals


class TestFigure3:
    def test_initial_selection_differs_per_client(self, world):
        _orb, server, _server2, p1, p2 = world
        oref, _principals = export_s0(server, [p1, p2])
        gp1 = p1.bind(oref)
        gp2 = p2.bind(oref)
        # P1 is on the server's LAN: no auth, plain Nexus.
        assert gp1.selected_proto_id == "nexus"
        # P2 is off-LAN: the glue with authentication applies.
        assert gp2.selected_proto_id == "glue"

    def test_both_clients_can_invoke(self, world):
        _orb, server, _server2, p1, p2 = world
        oref, _ = export_s0(server, [p1, p2])
        gp1 = p1.bind(oref)
        gp2 = p2.bind(oref)
        assert gp1.invoke("add", 1) == 1
        # gp2 must pick the stack authenticated as p2: its OR clone's
        # first applicable glue might be p1's stack — drop entries whose
        # principal isn't ours (client-side pool control).
        gp2.oref.protocols = [
            e for e in gp2.oref.protocols
            if e.proto_id != "glue"
            or e.proto_data["capabilities"][0]["principal"].startswith("p2")
        ]
        assert gp2.invoke("add", 1) == 2

    def test_migration_flips_roles(self, world):
        _orb, server, server2, p1, p2 = world
        oref, _ = export_s0(server, [p1, p2])
        gp1 = p1.bind(oref)
        gp2 = p2.bind(oref)
        gp2.oref.protocols = [
            e for e in gp2.oref.protocols
            if e.proto_id != "glue"
            or e.proto_data["capabilities"][0]["principal"].startswith("p2")
        ]
        assert gp1.selected_proto_id == "nexus"
        assert gp2.selected_proto_id == "glue"

        # Server keys must exist at the new home for auth to keep
        # working: share the keystore contents (a real deployment's
        # KDC); then migrate S0 onto P2's LAN.
        for principal in server.keystore.known_principals():
            server2.keystore.install(principal,
                                     server.keystore.lookup(principal))
        migrate(server, oref.object_id, server2)
        gp1.invoke("get")   # follow the MOVED notice
        gp2.invoke("get")

        # Roles flipped, exactly as §4.3 describes.
        assert gp2.selected_proto_id == "nexus"
        gp1.oref.protocols = [
            e for e in gp1.oref.protocols
            if e.proto_id != "glue"
            or e.proto_data["capabilities"][0]["principal"].startswith("p1")
        ]
        assert gp1.selected_proto_id == "glue"
        # And both still work.
        assert gp1.invoke("add", 1) >= 1
        assert gp2.invoke("add", 1) >= 2
