"""Integration test of the paper's §5 / Figure 4 experiment.

The client on M0 holds one GP while its server object migrates
M1 -> M2 -> M3 -> M0.  At each stop the protocol actually chosen must
follow the paper's sequence:

1. M1 (remote site):   glue with timeout + security capabilities
2. M2 (same campus):   glue with timeout capability
3. M3 (same LAN):      plain Nexus/TCP (no capability applies,
                       shared memory inapplicable across machines)
4. M0 (same machine):  shared memory
"""

import pytest

from repro.core import ORB
from repro.core.capabilities import (
    CallQuotaCapability,
    EncryptionCapability,
)
from repro.core.migration import migrate
from repro.simnet import NetworkSimulator, paper_testbed

from tests.core.conftest import Counter


@pytest.fixture
def world():
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    servers = {
        "s1": orb.context("s1", machine=tb.m1),
        "s2": orb.context("s2", machine=tb.m2),
        "s3": orb.context("s3", machine=tb.m3),
        "s4": orb.context("s4", machine=tb.m0),
    }
    yield orb, sim, client, servers
    orb.shutdown()


def export_figure4(server):
    """Figure 4-B's protocol table: glue(timeout+security), glue(timeout),
    shm, nexus."""
    return server.export(Counter(), glue_stacks=[
        [CallQuotaCapability.for_calls(1_000_000),
         EncryptionCapability.server_descriptor(key_seed=42)],
        [CallQuotaCapability.for_calls(1_000_000)],
    ])


class TestFigure4:
    def test_protocol_table_layout(self, world):
        _orb, _sim, client, servers = world
        oref = export_figure4(servers["s1"])
        assert oref.proto_ids() == ["glue", "glue", "shm", "nexus"]

    def test_stage_sequence(self, world):
        _orb, sim, client, servers = world
        oref = export_figure4(servers["s1"])
        gp = client.bind(oref)

        # Stage 1: server on M1, remote site.
        assert gp.describe_selection() == "glue[quota+encryption]"
        assert gp.invoke("add", 1) == 1

        # Stage 2: migrate to M2 (same campus, different LAN).
        migrate(servers["s1"], oref.object_id, servers["s2"])
        assert gp.invoke("add", 1) == 2
        assert gp.describe_selection() == "glue[quota]"

        # Stage 3: migrate to M3 (client's own LAN).
        migrate(servers["s2"], oref.object_id, servers["s3"])
        assert gp.invoke("add", 1) == 3
        assert gp.describe_selection() == "nexus"

        # Stage 4: migrate to M0 (client's machine).
        migrate(servers["s3"], oref.object_id, servers["s4"])
        assert gp.invoke("add", 1) == 4
        assert gp.describe_selection() == "shm"

    def test_state_survives_the_whole_tour(self, world):
        _orb, _sim, client, servers = world
        oref = export_figure4(servers["s1"])
        gp = client.bind(oref)
        total = 0
        for i, (src, dst) in enumerate(
                [("s1", "s2"), ("s2", "s3"), ("s3", "s4")]):
            total += gp.invoke("add", 10)
            migrate(servers[src], oref.object_id, servers[dst])
        assert gp.invoke("get") == 30

    def test_virtual_time_reflects_placement(self, world):
        """Requests get *cheaper* as the object migrates closer — the
        performance story behind protocol adaptivity."""
        _orb, sim, client, servers = world
        oref = export_figure4(servers["s1"])
        gp = client.bind(oref)
        payload = "x" * 100_000

        def cost_of_call():
            t0 = sim.clock.now()
            gp.invoke("echo", payload)
            return sim.clock.now() - t0

        gp.invoke("get")  # settle connections
        remote_cost = cost_of_call()
        migrate(servers["s1"], oref.object_id, servers["s3"])
        gp.invoke("get")
        lan_cost = cost_of_call()
        migrate(servers["s3"], oref.object_id, servers["s4"])
        gp.invoke("get")
        shm_cost = cost_of_call()
        assert remote_cost > lan_cost > shm_cost
        assert shm_cost < lan_cost / 5

    def test_quota_travels_with_migration(self, world):
        """Each migration re-creates the server-side stacks; the client
        half keeps its own count (per-GP metering)."""
        _orb, _sim, client, servers = world
        oref = servers["s1"].export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(3, applicability="always")]])
        gp = client.bind(oref)
        gp.pool.disallow("shm")
        gp.pool.disallow("nexus")
        gp.invoke("add", 1)
        migrate(servers["s1"], oref.object_id, servers["s2"])
        gp.invoke("add", 1)
        gp.invoke("add", 1)
        from repro.exceptions import QuotaExceededError, RemoteException

        with pytest.raises((QuotaExceededError, RemoteException)):
            gp.invoke("add", 1)
