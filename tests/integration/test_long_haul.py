"""Soak test: thousands of mixed requests with migrations interleaved.

A deterministic long-haul run over the simulated testbed: many GPs,
capability stacks, periodic migrations around the Figure 4 ring, naming
rebinds, and continuous traffic.  Asserts at the end that not a single
increment was lost, that virtual time moved strictly forward, and that
the object visited every context.
"""

import pytest

from repro.core import ORB, NameService
from repro.core.capabilities import CallQuotaCapability, IntegrityCapability
from repro.core.migration import migrate
from repro.security.prng import Pcg32
from repro.simnet import NetworkSimulator, paper_testbed

from tests.core.conftest import Counter


@pytest.mark.parametrize("seed", [1, 2])
def test_long_haul_soak(seed):
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology, keep_records=0)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    ring = [orb.context(f"ring-{m.name}", machine=m)
            for m in (tb.m1, tb.m2, tb.m3, tb.m0)]
    naming = NameService()

    oref = ring[0].export(Counter(), glue_stacks=[[
        CallQuotaCapability.for_calls(10 ** 9),
        IntegrityCapability.checksum(applicability="always"),
    ]])
    naming.bind("soak/counter", oref)

    rng = Pcg32(seed)
    gps = [client.bind(naming.resolve("soak/counter")) for _ in range(4)]
    total_adds = 0
    migrations = 0
    visited = {oref.context_id}
    home = 0
    last_time = sim.clock.now()
    protocols_seen = set()

    for step in range(2000):
        gp = rng.choice(gps)
        action = rng.uniform()
        if action < 0.85:
            gp.invoke("add", 1)
            total_adds += 1
        elif action < 0.95:
            assert gp.invoke("get") == total_adds
        else:
            # Migrate one hop around the ring and rebind the name.
            nxt = (home + 1) % len(ring)
            new_oref = migrate(ring[home], oref.object_id, ring[nxt])
            naming.rebind("soak/counter", new_oref)
            visited.add(new_oref.context_id)
            home = nxt
            migrations += 1
            # One of the GPs is refreshed from the name service, the
            # rest will discover the move through forwarding.
            gps[rng.randint(0, len(gps) - 1)] = client.bind(
                naming.resolve("soak/counter"))
        protocols_seen.add(gp.describe_selection())
        now = sim.clock.now()
        assert now >= last_time
        last_time = now

    # Nothing lost, everything consistent, everywhere visited.
    final = client.bind(naming.resolve("soak/counter"))
    assert final.invoke("get") == total_adds
    assert migrations > 50
    assert len(visited) == 4  # the object toured every ring context
    # The tour crossed applicability boundaries: several distinct
    # protocol configurations must have been used.
    assert len(protocols_seen) >= 3
    assert sim.clock.now() > 0
    orb.shutdown()
