"""Admission control end to end, over real TCP pipelined channels.

An endpoint with admission enabled is offered roughly 10x its service
capacity from many threads.  The promises under test:

* queue occupancy stays bounded at the policy's capacity — pipelining
  can no longer buffer unbounded work inside the server;
* excess load is refused with explicit pushback (`OverloadError`
  client-side, `shed` events server-side), not buffered or dropped;
* interactive traffic rides ahead of batch traffic through the same
  saturated endpoint;
* a request whose propagated deadline dies in the queue is shed, not
  dispatched;
* `Endpoint.stop()` fails queued two-way requests instead of leaving
  their callers hanging.
"""

import threading
import time

import pytest

from repro.admission import BATCH, AdmissionPolicy
from repro.core import ORB
from repro.core.context import Placement
from repro.core.objref import ObjectReference
from repro.core.resilience import RetryPolicy
from repro.exceptions import (
    DeadlineExceededError,
    HpcError,
    OverloadError,
    RetryExhaustedError,
)
from repro.idl import remote_interface, remote_method


@remote_interface("Plodder")
class Plodder:
    """Echo with a fixed service time."""

    SERVICE = 0.01

    @remote_method(retry_safe=True)
    def echo(self, token):
        time.sleep(self.SERVICE)
        return token


@remote_interface("Molasses")
class Molasses:
    """Echo slow enough that queued work outlives a stop()."""

    @remote_method(retry_safe=True)
    def echo(self, token):
        time.sleep(0.5)
        return token


def tcp_world(orb, policy, servant=None):
    """(server ctx, oref) where the servant is only reachable over TCP
    and the server runs the given admission policy."""
    server = orb.context("adm-srv", enable_tcp=True,
                         placement=Placement("srv", "lan-a", "site-a"))
    server.set_admission_policy(policy)
    oref = ObjectReference.from_bytes(
        server.export(servant or Plodder()).to_bytes())
    for entry in oref.protocols:
        entry.proto_data["addresses"] = [
            a for a in entry.proto_data.get("addresses", [])
            if a.get("transport") == "tcp"]
    return server, oref


def client_ctx(orb, name="adm-cli"):
    return orb.context(name, enable_tcp=True,
                       placement=Placement(name, "lan-b", "site-b"))


def policy(**kw):
    defaults = dict(enabled=True, max_limit=2, initial_limit=2,
                    max_workers=2, queue_capacity=4, retry_after=0.02)
    defaults.update(kw)
    return AdmissionPolicy(**defaults)


class TestOverloadStress:
    THREADS = 8
    CALLS = 12

    def test_ten_x_load_bounded_queue_and_pushback(self):
        """~10x capacity offered; the queue never exceeds its bound and
        the excess is refused with pushback, not buffered."""
        orb = ORB()
        try:
            server, oref = tcp_world(orb, policy())
            cli = client_ctx(orb)
            ok, refused = [], []
            lock = threading.Lock()

            def hammer():
                gp = cli.bind(oref, retry_policy=RetryPolicy(
                    max_attempts=2, base_backoff=0.001, jitter=0.0))
                for i in range(self.CALLS):
                    try:
                        token = f"{threading.get_ident()}-{i}"
                        assert gp.invoke("echo", token) == token
                        with lock:
                            ok.append(token)
                    except (OverloadError, RetryExhaustedError,
                            HpcError):
                        with lock:
                            refused.append(token)
                gp.close()

            threads = [threading.Thread(target=hammer)
                       for _ in range(self.THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ctrl = server.admission
            assert ctrl.max_depth <= 4          # the bound held
            assert ctrl.shed > 0                # excess was refused...
            assert len(ok) > 0                  # ...but work still flowed
            assert len(ok) + len(refused) == self.THREADS * self.CALLS
            # pushback was recorded client-side for backoff/hedging
            assert cli.pushback.notes > 0
        finally:
            orb.shutdown()

    def test_interactive_rides_ahead_of_batch(self):
        """Under saturation from batch-class traffic, interactive
        calls pop first and see a visibly shorter tail."""
        orb = ORB()
        try:
            server, oref = tcp_world(orb, policy(queue_capacity=8))
            cli = client_ctx(orb)
            stop = threading.Event()
            batch_lat, inter_lat = [], []
            lock = threading.Lock()

            def batch_load():
                gp = cli.bind(oref, priority=BATCH,
                              retry_policy=RetryPolicy(
                                  max_attempts=4, base_backoff=0.001,
                                  jitter=0.0))
                while not stop.is_set():
                    started = time.monotonic()
                    try:
                        gp.invoke("echo", "b")
                    except HpcError:
                        continue
                    with lock:
                        batch_lat.append(time.monotonic() - started)
                gp.close()

            loaders = [threading.Thread(target=batch_load)
                       for _ in range(6)]
            for t in loaders:
                t.start()
            time.sleep(0.2)                     # let the queue fill
            gp = cli.bind(oref, retry_policy=RetryPolicy(
                max_attempts=6, base_backoff=0.001, jitter=0.0))
            for i in range(30):
                started = time.monotonic()
                try:
                    gp.invoke("echo", i)
                except HpcError:
                    continue
                inter_lat.append(time.monotonic() - started)
            stop.set()
            for t in loaders:
                t.join()
            gp.close()
            assert len(inter_lat) >= 10 and len(batch_lat) >= 10
            inter_lat.sort()
            batch_lat.sort()
            inter_p50 = inter_lat[len(inter_lat) // 2]
            batch_p50 = batch_lat[len(batch_lat) // 2]
            assert inter_p50 < batch_p50
        finally:
            orb.shutdown()

    def test_deadline_expired_in_queue_is_shed(self):
        """A call whose propagated budget dies while queued is shed
        with a `deadline` pushback, never dispatched."""
        orb = ORB()
        try:
            server, oref = tcp_world(orb, policy(queue_capacity=8))
            cli = client_ctx(orb)
            stop = threading.Event()

            def saturate():
                gp = cli.bind(oref, retry_policy=RetryPolicy(
                    max_attempts=4, base_backoff=0.001, jitter=0.0))
                while not stop.is_set():
                    try:
                        gp.invoke("echo", "fill")
                    except HpcError:
                        pass
                gp.close()

            loaders = [threading.Thread(target=saturate)
                       for _ in range(4)]
            for t in loaders:
                t.start()
            time.sleep(0.2)
            # tight budget: enough to be admitted, not enough to
            # survive the queue behind 10ms services
            gp = cli.bind(oref, retry_policy=RetryPolicy(
                max_attempts=1, deadline=0.015))
            deadline_outcomes = 0
            for _ in range(20):
                try:
                    gp.invoke("echo", "urgent")
                except (OverloadError, DeadlineExceededError,
                        RetryExhaustedError):
                    deadline_outcomes += 1
                except HpcError:
                    pass
            stop.set()
            for t in loaders:
                t.join()
            gp.close()
            assert deadline_outcomes > 0
            snap = server.admission.snapshot()
            assert snap["shed"] > 0
        finally:
            orb.shutdown()


class TestStopDrain:
    def test_stop_fails_queued_requests_fast(self):
        """Queued two-way requests are answered with `stopping`
        pushback on stop — no caller waits out its own timeout."""
        orb = ORB()
        try:
            server, oref = tcp_world(
                orb, policy(max_limit=1, initial_limit=1, max_workers=1,
                            queue_capacity=8),
                servant=Molasses())
            cli = client_ctx(orb)
            gps = [cli.bind(oref, retry_policy=RetryPolicy(max_attempts=1))
                   for _ in range(5)]
            futures = [gp.invoke_async("echo", i)
                       for i, gp in enumerate(gps)]
            time.sleep(0.15)      # one in service, the rest queued
            server.server.endpoint.stop()
            outcomes = []
            deadline = time.monotonic() + 3.0
            for f in futures:
                try:
                    outcomes.append(("ok", f.result(
                        timeout=max(deadline - time.monotonic(), 0.1))))
                except Exception as exc:  # noqa: BLE001 - recording
                    outcomes.append(("err", type(exc).__name__))
            # every future settled well before any transport timeout,
            # and the queued ones were refused, not dropped
            assert len(outcomes) == 5
            assert any(kind == "err" for kind, _ in outcomes)
        finally:
            orb.shutdown()
