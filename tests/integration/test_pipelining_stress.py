"""Stress the pipelined channel: many threads, one TCP connection.

The :class:`~repro.nexus.endpoint.PipelinedStartpoint` promises that
any number of callers can have requests outstanding on *one* channel,
demuxed by correlation id.  These tests hammer that promise:

* N threads x M calls through one GP (one cached client, one socket)
  with per-call unique tokens — a single cross-delivered reply fails
  the run;
* replies that nobody is waiting for any more (timeouts) are dropped,
  never delivered to a different request;
* ``close()`` while calls are in flight drains them with the PR-2
  semantics: in-flight ``invoke_async`` futures complete (result or a
  clean error), post-close invocations raise ``HpcError``.
"""

import threading
import time

import pytest

from repro.core import ORB
from repro.core.context import Placement
from repro.core.objref import ObjectReference
from repro.core.request import Invocation, decode_reply, encode_invocation
from repro.exceptions import ChannelClosedError, HpcError, TransportError
from repro.idl import remote_interface, remote_method
from repro.nexus.endpoint import PipelinedStartpoint

from tests.core.conftest import Counter


@remote_interface("Sluggish")
class Sluggish:
    """Echo with an optional per-call delay (to hold requests open)."""

    @remote_method(retry_safe=True)
    def echo(self, token, delay_s):
        if delay_s:
            time.sleep(delay_s)
        return token


def tcp_pair(orb, servant):
    """(gp, server ctx, client ctx) where the GP can only reach the
    servant over TCP — one socket carries everything."""
    server = orb.context("pipe-srv", enable_tcp=True,
                         placement=Placement("srv", "lan-a", "site-a"))
    client = orb.context("pipe-cli", enable_tcp=True,
                         placement=Placement("cli", "lan-b", "site-b"))
    oref = ObjectReference.from_bytes(server.export(servant).to_bytes())
    for entry in oref.protocols:
        entry.proto_data["addresses"] = [
            a for a in entry.proto_data.get("addresses", [])
            if a.get("transport") == "tcp"]
    return client.bind(oref), server, client


class TestPipelinedStress:
    THREADS = 8
    CALLS = 25

    def test_no_cross_delivery_under_contention(self):
        """8 threads x 25 calls, every reply must match its request's
        unique token — over exactly one pipelined connection."""
        orb = ORB()
        try:
            gp, _server, _client = tcp_pair(orb, Sluggish())
            entry = gp.select_protocol()
            client_obj = gp._client_for(entry)
            mismatches = []
            barrier = threading.Barrier(self.THREADS)

            def worker(tid):
                barrier.wait()
                for i in range(self.CALLS):
                    token = f"t{tid}-c{i}"
                    got = gp.invoke("echo", token, 0)
                    if got != token:
                        mismatches.append((token, got))

            threads = [threading.Thread(target=worker, args=(t,))
                       for t in range(self.THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not mismatches, mismatches[:5]
            # Everything above shared ONE pipelined startpoint.
            sp = client_obj._startpoint
            assert isinstance(sp, PipelinedStartpoint)
            assert sp.inflight == 0
        finally:
            orb.shutdown()

    def test_requests_genuinely_overlap(self):
        """Two slow calls on one connection take ~max, not ~sum: the
        channel is pipelined, not ping-pong."""
        orb = ORB()
        try:
            gp, _server, _client = tcp_pair(orb, Sluggish())
            gp.invoke("echo", "warm", 0)  # connect outside the clock
            started = time.monotonic()
            futures = [gp.invoke_async("echo", f"s{i}", 0.4)
                       for i in range(4)]
            assert [f.result(timeout=30) for f in futures] == \
                ["s0", "s1", "s2", "s3"]
            elapsed = time.monotonic() - started
            # Serial would be >= 1.6s; pipelined rides one round trip
            # per in-flight window (4 calls, 8 workers -> ~0.4s).
            assert elapsed < 1.2, f"calls serialized: {elapsed:.2f}s"
        finally:
            orb.shutdown()

    def test_late_reply_never_cross_delivers(self):
        """A request that timed out must not have its (late) reply
        delivered to any later request on the same channel."""
        orb = ORB()
        try:
            gp, _server, _client = tcp_pair(orb, Sluggish())
            gp.invoke("echo", "warm", 0)
            entry = gp.select_protocol()
            client_obj = gp._client_for(entry)
            sp = client_obj._startpoint
            m = client_obj.marshaller

            def payload(token, delay):
                return encode_invocation(m, Invocation(
                    object_id=gp.oref.object_id, method="echo",
                    args=(token, delay)))

            sp.timeout = 0.3
            with pytest.raises(TransportError):
                sp.call("hpc.invoke", payload("late", 1.0))
            # The late reply lands ~0.7s from now on this very channel.
            # Every subsequent call must still see its own token.
            sp.timeout = 10.0
            for i in range(10):
                reply = sp.call("hpc.invoke", payload(f"after-{i}", 0))
                assert decode_reply(m, reply) == f"after-{i}"
                time.sleep(0.1)
            assert sp.inflight == 0
        finally:
            orb.shutdown()

    def test_close_drains_inflight_async(self):
        """GP.close() while async calls are in flight: every future
        settles (value or clean cancellation/error), nothing hangs."""
        orb = ORB()
        try:
            gp, _server, _client = tcp_pair(orb, Sluggish())
            gp.invoke("echo", "warm", 0)
            futures = [gp.invoke_async("echo", f"d{i}", 0.2)
                       for i in range(6)]
            gp.close()  # default wait=True: drain
            settled = 0
            for f in futures:
                if f.cancelled():
                    settled += 1
                    continue
                try:
                    f.result(timeout=5)
                except (HpcError, ChannelClosedError):
                    pass
                settled += 1
            assert settled == len(futures)
            with pytest.raises(HpcError, match="closed"):
                gp.invoke("echo", "post-close", 0)
        finally:
            orb.shutdown()

    def test_startpoint_close_fails_waiters_with_request_sent(self):
        """Killing the channel under outstanding requests surfaces
        ChannelClosedError flagged request_sent on every waiter — the
        idempotence guard's food."""
        orb = ORB()
        try:
            gp, _server, _client = tcp_pair(orb, Sluggish())
            gp.invoke("echo", "warm", 0)
            entry = gp.select_protocol()
            client_obj = gp._client_for(entry)
            sp = client_obj._startpoint
            slow = encode_invocation(client_obj.marshaller, Invocation(
                object_id=gp.oref.object_id, method="echo",
                args=("slow", 2.0)))
            result = {}

            def slow_call():
                try:
                    sp.call("hpc.invoke", slow)
                except Exception as exc:  # noqa: BLE001
                    result["exc"] = exc

            t = threading.Thread(target=slow_call)
            t.start()
            deadline = time.monotonic() + 5
            while sp.inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.3)  # the request is provably on the wire
            sp.close()
            t.join(timeout=5)
            exc = result.get("exc")
            assert isinstance(exc, ChannelClosedError)
            assert getattr(exc, "request_sent", False)
        finally:
            orb.shutdown()


class TestPipelinedBatchInterplay:
    def test_counter_sequential_consistency(self):
        """Concurrent increments through one pipelined channel land
        exactly once each (the server serializes dispatch per channel,
        the client demuxes per reply)."""
        orb = ORB()
        try:
            gp, _server, _client = tcp_pair(orb, Counter())
            threads = [threading.Thread(
                target=lambda: [gp.invoke("add", 1) for _ in range(20)])
                for _ in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert gp.invoke("get") == 100
        finally:
            orb.shutdown()
