"""Crash matrix against real endpoint processes (tier-2, ``-m proc``).

Every resilience mechanism the suite validates in-process — failover,
breakers, hedging, degradation envelopes — is exercised here against
genuine OS processes over kernel TCP: SIGKILL crashes, SIGSTOP gray
failures, SIGTERM rolling restarts.  These tests spawn subprocesses and
run wall-clock workloads, so they live behind the ``proc`` marker and
out of tier-1 (CI runs them in a timeout-guarded tier-2 job).
"""

import os
import time

import pytest

from repro.cluster.procs import NodeSpec, ProcCluster, ProcRun
from repro.core.resilience import HedgePolicy, RetryPolicy
from repro.faults.process import kill_node, pulse_pause, restart_node
from repro.metrics.curves import assert_degradation

pytestmark = pytest.mark.proc

RETRY = RetryPolicy(max_attempts=4, base_backoff=0.02, max_backoff=0.2)


def assert_all_reaped(cluster: ProcCluster) -> None:
    """The no-orphans acceptance criterion: every child is waited on,
    and its pid no longer names a live process of ours."""
    assert cluster.orphans == []
    for name, node in cluster.nodes.items():
        assert node.proc is not None and node.proc.poll() is not None, \
            f"node {name} not reaped"
        if node.pid is not None:
            try:
                os.kill(node.pid, 0)
            except ProcessLookupError:
                pass  # fully gone — the expected case
            except PermissionError:  # pragma: no cover - pid reuse
                pass


class TestCrashMatrix:
    """SIGKILL one node mid-workload, per role; clients must recover to
    >= 80% of pre-kill goodput inside the envelope window."""

    @pytest.mark.parametrize("role", ["primary", "replica", "mid-restart"])
    def test_sigkill_recovers_within_envelope(self, role):
        with ProcCluster(nodes=3) as cluster:
            gp = cluster.bind("w0", prefer="n0", retry_policy=RETRY)
            run = ProcRun(duration=5.0, threads=4, bucket_seconds=0.5)
            if role == "primary":
                # The node every call tries first.
                run.schedule(2.0, kill_node(cluster, "n0"), "kill primary")
            elif role == "replica":
                # A load-balanced failover/hedge target.
                run.schedule(2.0, kill_node(cluster, "n1"), "kill replica")
            else:
                # A node mid-reschedule: rolling-restart it, then SIGKILL
                # the freshly respawned process while GPs are being
                # rewired onto it.
                run.schedule(1.6, restart_node(cluster, "n1"),
                             "rolling restart n1")
                run.schedule(2.2, kill_node(cluster, "n1"),
                             "kill n1 mid-reschedule")
            report = run.run(cluster, [gp])

            assert report.ok > 0
            # Clients recover through failover/breakers: goodput back to
            # >= 80% of the pre-kill baseline within 2.5s of the trough.
            summary = assert_degradation(
                report.curve, recover_within=2.5,
                recovered_fraction=0.8, baseline_buckets=3)
            assert summary["baseline"] > 0
            # The kill actually happened and was observed as an event.
            assert report.metrics["counters"]["proc_exits.sigkill"] >= 1.0
            # Surviving nodes answered the post-mortem snapshot poll and
            # carried real traffic (codec round-trip is exercised live).
            survivors = report.node_snapshots
            assert survivors  # at least one node outlived the crash
            assert sum(s.servant_calls.get("w0", 0)
                       for s in survivors.values()) > 0
        assert_all_reaped(cluster)

    def test_client_visible_errors_stay_low(self):
        """With retry_safe echo traffic, a single crash should be almost
        invisible to callers — the retries absorb it."""
        with ProcCluster(nodes=3) as cluster:
            gp = cluster.bind("w0", retry_policy=RETRY)
            run = ProcRun(duration=4.0, threads=4, bucket_seconds=0.5)
            run.schedule(2.0, kill_node(cluster, "n0"), "kill n0")
            report = run.run(cluster, [gp])
            assert report.total > 0
            assert report.errors <= max(report.total * 0.02, 4)
        assert_all_reaped(cluster)


class TestGrayFailure:
    def test_sigstop_hedging_wins_instead_of_hanging(self):
        """A SIGSTOP'd node keeps accepting TCP into its kernel backlog;
        naive clients would hang.  Deadlined calls plus hedging must
        keep every call bounded and goodput recovering after SIGCONT."""
        with ProcCluster(nodes=3, call_timeout=1.0) as cluster:
            gp = cluster.bind(
                "w0",
                retry_policy=RetryPolicy(max_attempts=4,
                                         base_backoff=0.02,
                                         max_backoff=0.2, deadline=5.0),
                hedge_policy=HedgePolicy(enabled=True, min_samples=5,
                                         min_delay=0.05, max_delay=0.25))
            run = ProcRun(duration=5.0, threads=4, bucket_seconds=0.5)
            pulse_pause(run, cluster, "n0", at=1.5, duration=1.5)
            started = time.monotonic()
            report = run.run(cluster, [gp])
            elapsed = time.monotonic() - started

            # Nothing hung: the run ended on schedule, not on a stuck
            # call; the workload joined its threads within the duration
            # plus the per-call bound.
            assert elapsed < run.duration + 10.0
            counters = report.metrics["counters"]
            # Hedging took over for the frozen node...
            assert counters.get("hedge_wins_total", 0.0) > 0
            # ...and deadlines kept the pause from hanging callers: the
            # pause window still completed calls (hedged around n0).
            assert report.ok > 0
            assert report.errors <= max(report.total * 0.05, 8)
            # n0 was resumed and survives to the end.
            assert cluster.nodes["n0"].alive
            assert counters["proc_pauses.pause"] == 1.0
            assert counters["proc_pauses.resume"] == 1.0
            # Post-resume goodput is back near baseline.
            head = report.curve.buckets[:3]
            baseline = sum(b.goodput for b in head) / len(head)
            assert report.curve.buckets[-1].goodput >= 0.5 * baseline
        assert_all_reaped(cluster)


class TestLifecycle:
    def test_rolling_restart_reschedules_clients(self):
        """SIGTERM drain + respawn + update_reference: the same GP keeps
        working across the restart and lands on the new process."""
        with ProcCluster(nodes=2) as cluster:
            gp = cluster.bind("w0", retry_policy=RETRY)
            assert gp.invoke("process", b"before") == b"before"
            old = cluster.nodes["n0"]
            fresh = cluster.restart("n0")
            assert fresh.pid != old.pid
            assert gp.invoke("process", b"after") == b"after"
            # The drained process exited cleanly (SIGTERM != crash).
            assert old.proc.returncode == 0
        assert_all_reaped(cluster)

    def test_snapshots_round_trip_live(self):
        """Control-channel snapshots from live nodes decode to real
        registry snapshots with the traffic we just sent."""
        with ProcCluster(nodes=2) as cluster:
            gp = cluster.bind("w0", prefer="n0", retry_policy=RETRY)
            for i in range(10):
                gp.invoke("process", b"x" * 64)
            snaps = cluster.snapshots()
            assert set(snaps) == {"n0", "n1"}
            total = sum(s.servant_calls["w0"] for s in snaps.values())
            assert total >= 10
            for snap in snaps.values():
                assert set(snap.metrics) >= {"counters", "gauges",
                                             "histograms", "series"}
        assert_all_reaped(cluster)
        # Clean control-plane shutdown: both exited 0, and the harness
        # recorded the spawn/exit pairing on its hook bus.
        assert set(cluster.exit_codes().values()) == {0}

    def test_exit_reaps_even_paused_nodes(self):
        """__exit__ must not hang on (or orphan) a SIGSTOP'd child."""
        with ProcCluster(nodes=2) as cluster:
            cluster.pause("n1")
        assert_all_reaped(cluster)

    def test_distinct_worker_sets_per_node(self):
        """Nodes need not be uniform replicas: ids bind to whichever
        nodes export them."""
        specs = [NodeSpec("a", ("shared", "only-a")),
                 NodeSpec("b", ("shared", "only-b"))]
        with ProcCluster(specs) as cluster:
            shared = cluster.bind("shared", retry_policy=RETRY)
            only_b = cluster.bind("only-b", retry_policy=RETRY)
            assert shared.invoke("process", b"s") == b"s"
            assert only_b.invoke("process", b"b") == b"b"
            # 'shared' has one entry per node, the singletons just one.
            assert len(cluster.merged_oref("shared").protocols) == 2
            assert len(cluster.merged_oref("only-b").protocols) == 1
        assert_all_reaped(cluster)
