"""Deeper coverage of the simulated deployment mode.

Everything the wall-clock tests cover must also hold in the virtual
world — plus the virtual-time semantics that only exist there.
"""

import numpy as np
import pytest

from repro.core import ORB
from repro.core.capabilities import (
    AuthenticationCapability,
    CallQuotaCapability,
    TimeLeaseCapability,
)
from repro.exceptions import HpcError, RemoteException
from repro.security.keys import Principal
from repro.simnet import NetworkSimulator, paper_testbed

from tests.core.conftest import Counter


class TestSimDeployment:
    def test_context_needs_simulator_for_machine(self):
        orb = ORB()  # no simulator
        with pytest.raises(HpcError):
            orb.context("bad", machine="M0")

    def test_machine_by_name(self, sim_world):
        orb, sim, tb, contexts = sim_world
        ctx = orb.context("by-name", machine="M2")
        assert ctx.placement.machine == "M2"

    def test_cdr_encoding_in_sim(self, sim_world):
        orb, _sim, tb, contexts = sim_world
        server = orb.context("cdr-server", machine=tb.m1, encoding="cdr")
        gp = contexts["client"].bind(server.export(Counter()))
        assert gp.invoke("add", 3) == 3

    def test_oneway_in_sim_is_synchronous(self, sim_world):
        _orb, sim, _tb, contexts = sim_world
        counter = Counter()
        oref = contexts["s1"].export(counter)
        gp = contexts["client"].bind(oref)
        gp.invoke_oneway("bump")
        # The virtual world dispatches inline: the effect is immediate.
        assert counter.n == 1

    def test_async_in_sim_returns_completed_future(self, sim_world):
        _orb, _sim, _tb, contexts = sim_world
        gp = contexts["client"].bind(contexts["s1"].export(Counter()))
        future = gp.invoke_async("add", 5)
        assert future.done()
        assert future.result() == 5

    def test_async_exception_in_sim(self, sim_world):
        _orb, _sim, _tb, contexts = sim_world
        gp = contexts["client"].bind(contexts["s1"].export(Counter()))
        future = gp.invoke_async("fail", "virtual boom")
        with pytest.raises(RemoteException):
            future.result()

    def test_authenticated_traffic_in_sim(self, sim_world):
        _orb, _sim, _tb, contexts = sim_world
        server, client = contexts["s1"], contexts["client"]
        alice = Principal("alice", "lab")
        key = server.keystore.generate(alice)
        client.keystore.install(alice, key)
        oref = server.export(Counter(), glue_stacks=[
            [AuthenticationCapability.for_principal(alice)]])
        gp = client.bind(oref)
        assert gp.describe_selection() == "glue[auth]"
        for i in range(5):
            assert gp.invoke("add", 1) == i + 1

    def test_lease_against_virtual_clock(self, sim_world):
        _orb, sim, _tb, contexts = sim_world
        server, client = contexts["s1"], contexts["client"]
        oref = server.export(Counter(), glue_stacks=[
            [TimeLeaseCapability.until(sim.clock.now() + 1.0,
                                       applicability="always")]])
        gp = client.bind(oref)
        gp.pool.disallow("nexus")
        gp.pool.disallow("shm")
        gp.invoke("add", 1)
        sim.clock.advance(2.0)
        from repro.exceptions import LeaseExpiredError

        with pytest.raises(LeaseExpiredError):
            gp.invoke("add", 1)

    def test_large_array_over_sim(self, sim_world):
        _orb, sim, _tb, contexts = sim_world
        gp = contexts["client"].bind(contexts["s1"].export(Counter()))
        arr = np.arange(1 << 18, dtype=np.float64)
        t0 = sim.clock.now()
        out = gp.invoke("echo", arr)
        np.testing.assert_array_equal(out, arr)
        # 2 MiB each way over simulated ATM: hundreds of milliseconds.
        assert sim.clock.now() - t0 > 0.1

    def test_cpu_charges_accumulate(self, sim_world):
        _orb, sim, _tb, contexts = sim_world
        server, client = contexts["s1"], contexts["client"]
        oref = server.export(Counter(), glue_stacks=[
            [CallQuotaCapability.for_calls(100)]])
        gp = client.bind(oref)
        before = sim.cpu_seconds
        gp.invoke("echo", b"x" * 10_000)
        assert sim.cpu_seconds > before

    def test_transfer_log_sees_rpc_traffic(self, sim_world):
        _orb, sim, _tb, contexts = sim_world
        gp = contexts["client"].bind(contexts["s1"].export(Counter()))
        before = sim.log.total_messages
        gp.invoke("add", 1)
        # At least request + reply (plus connection setup on first use).
        assert sim.log.total_messages >= before + 2

    def test_two_clients_different_machines_different_costs(
            self, sim_world):
        _orb, sim, tb, contexts = sim_world
        oref = contexts["s1"].export(Counter())
        near = contexts["s2"].bind(oref)    # same site as M1? no—M2
        far_ctx = contexts["client"]        # M0, remote site from M1
        far = far_ctx.bind(oref)
        payload = b"z" * 50_000
        near.invoke("echo", b"")
        far.invoke("echo", b"")
        t0 = sim.clock.now()
        near.invoke("echo", payload)
        near_cost = sim.clock.now() - t0
        t0 = sim.clock.now()
        far.invoke("echo", payload)
        far_cost = sim.clock.now() - t0
        # M2 and M0 are both one fabric hop from M1 in the paper
        # topology, so the difference comes from capability-free paths
        # being equal — assert both sane and positive instead.
        assert near_cost > 0 and far_cost > 0
