"""Concurrency stress tests over the real (threaded) transports."""

import threading

import pytest

from repro.core import ORB
from repro.core.capabilities import CallQuotaCapability, IntegrityCapability
from repro.core.context import Placement
from repro.idl import remote_interface, remote_method


@remote_interface("SafeCounter")
class SafeCounter:
    """Servant with its own lock: the ORB allows concurrent dispatch."""

    def __init__(self):
        self.n = 0
        self._lock = threading.Lock()

    @remote_method
    def add(self, k: int) -> int:
        with self._lock:
            self.n += k
            return self.n

    @remote_method
    def get(self) -> int:
        with self._lock:
            return self.n


class TestConcurrentClients:
    @pytest.mark.parametrize("enable_tcp", [False, True],
                             ids=["inproc", "tcp"])
    def test_many_threads_one_servant(self, enable_tcp):
        orb = ORB()
        server = orb.context("stress-server", enable_tcp=enable_tcp)
        clients = [orb.context(f"stress-client-{i}",
                               enable_tcp=enable_tcp)
                   for i in range(4)]
        if enable_tcp:
            # Force traffic over real sockets.
            for ctx in clients:
                ctx.proto_pool.reorder(
                    [p for p in ctx.proto_pool.ids()])
        oref = server.export(SafeCounter())
        errors = []

        def hammer(ctx):
            try:
                gp = ctx.bind(oref)
                if enable_tcp:
                    gp.pool.disallow("shm")
                for _ in range(50):
                    gp.invoke("add", 1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(ctx,))
                   for ctx in clients]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        final = clients[0].bind(oref).invoke("get")
        assert final == 4 * 50
        orb.shutdown()

    def test_one_gp_shared_across_threads(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(SafeCounter()))
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    gp.invoke("add", 1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert gp.invoke("get") == 200

    def test_concurrent_glue_traffic(self, wall_orb):
        """Capability-processed requests from several threads through
        one server glue stack must not corrupt each other."""
        server = wall_orb.context("glue-server", placement=Placement(
            "s", "s-lan", "site"))
        client = wall_orb.context("glue-client", placement=Placement(
            "c", "c-lan", "site"))
        oref = server.export(SafeCounter(), glue_stacks=[[
            CallQuotaCapability.for_calls(10_000,
                                          applicability="always"),
            IntegrityCapability.checksum(applicability="always"),
        ]])
        errors = []

        def hammer():
            try:
                gp = client.bind(oref)  # one GP (and quota) per thread
                for _ in range(30):
                    gp.invoke("add", 1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert client.bind(oref).invoke("get") == 120

    def test_async_fanout(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(SafeCounter()))
        futures = [gp.invoke_async("add", 1) for _ in range(100)]
        results = {f.result(timeout=30) for f in futures}
        assert max(results) == 100
        assert gp.invoke("get") == 100

    def test_migration_under_load(self, wall_orb):
        """Requests keep succeeding while the object migrates away."""
        from repro.core.migration import migrate

        a = wall_orb.context("m-a", placement=Placement("ma", "la", "sa"))
        b = wall_orb.context("m-b", placement=Placement("mb", "lb", "sb"))
        client = wall_orb.context("m-c",
                                  placement=Placement("mc", "lc", "sc"))
        oref = a.export(SafeCounter())
        gp = client.bind(oref)
        errors = []
        done = threading.Event()

        def hammer():
            try:
                for _ in range(200):
                    gp.invoke("add", 1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                done.set()

        t = threading.Thread(target=hammer)
        t.start()
        # Migrate mid-traffic.
        migrate(a, oref.object_id, b)
        t.join(timeout=60)
        assert done.is_set() and errors == []
        assert gp.invoke("get") == 200
        orb_check = gp.oref.context_id
        assert orb_check == "m-b"
