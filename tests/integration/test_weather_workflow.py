"""The full §1 deployment as one integration test.

Brings every subsystem together: simulated topology, naming service
(served remotely), interface views, ACLs, authentication + encryption +
metering capabilities, migration under a load balancer, and the
observability hooks — a compressed version of what a real adopter's
system would look like.
"""

import numpy as np
import pytest

from repro.core import ORB, LoadBalancer
from repro.core.capabilities import (
    AuthenticationCapability,
    CallQuotaCapability,
    EncryptionCapability,
)
from repro.core.instrumentation import GLOBAL_HOOKS
from repro.core.naming import NameServer, NameService, resolve_oref
from repro.exceptions import QuotaExceededError, RemoteException
from repro.idl import InterfaceView, remote_interface, remote_method
from repro.security.acl import AccessControlList
from repro.security.keys import Principal
from repro.simnet import (
    ETHERNET_100,
    NetworkSimulator,
    Topology,
    WAN_T3,
)


@remote_interface("Simulation")
class Simulation:
    def __init__(self):
        self.state = np.zeros(256)
        self.steps = 0

    @remote_method
    def step(self, n: int) -> int:
        self.state += 0.5
        self.steps += n
        return self.steps

    @remote_method
    def feed(self, data) -> int:
        arr = np.asarray(data)
        self.state[: len(arr)] += arr
        return len(arr)

    @remote_method
    def get_map(self, resolution: int):
        return self.state[::max(1, 256 // resolution)].copy()

    @remote_method
    def summary(self) -> dict:
        return {"steps": self.steps, "mean": float(self.state.mean())}

    def hpc_get_state(self):
        return {"state": self.state, "steps": self.steps}

    def hpc_set_state(self, s):
        self.state = np.array(s["state"])
        self.steps = int(s["steps"])


@pytest.fixture
def world():
    topo = Topology()
    lab = topo.add_site("lab")
    campus = topo.add_site("campus")
    lab_lan = topo.add_lan("lab-lan", lab, ETHERNET_100)
    campus_lan = topo.add_lan("campus-lan", campus, ETHERNET_100)
    topo.connect(lab_lan, campus_lan, WAN_T3)
    topo.add_machine("super", lab_lan)
    topo.add_machine("lab-ws", lab_lan)
    topo.add_machine("campus-server", campus_lan)
    topo.add_machine("campus-ws", campus_lan)
    sim = NetworkSimulator(topo)
    orb = ORB(simulator=sim)
    yield sim, orb
    orb.shutdown()
    GLOBAL_HOOKS.clear()


class TestWeatherWorkflow:
    def test_full_deployment(self, world):
        sim, orb = world
        lab = orb.context("lab", machine="super")
        lab_client = orb.context("lab-client", machine="lab-ws")
        campus_host = orb.context("campus-host", machine="campus-server")
        campus_client = orb.context("campus-client", machine="campus-ws")

        # ---- bootstrap: one well-known name-server OR ----------------
        registry = NameService()
        ns_oref = lab.export(NameServer(registry))

        # ---- identities ----------------------------------------------
        partner = Principal("partner", "campus")
        key = lab.keystore.generate(partner)
        campus_client.keystore.install(partner, key)
        campus_host.keystore.install(partner, key)

        # ---- exports: one servant, three access modes -----------------
        simulation = Simulation()
        full_or = lab.export(simulation)

        acl = AccessControlList()
        acl.grant(partner, ["get_map", "summary", "feed"])
        # Paper semantics (§4.3): clients that do not need to
        # authenticate are the *local* ones, and they are trusted —
        # grant the anonymous read path too.
        acl.grant(None, ["get_map", "summary"])
        partner_or = lab.export(
            simulation,
            view=InterfaceView("PartnerView",
                               ["get_map", "summary", "feed"]),
            acl=acl,
            glue_stacks=[[
                AuthenticationCapability.for_principal(partner),
                EncryptionCapability.server_descriptor(key_seed=7),
            ]])

        metered_or = lab.export(
            simulation,
            view=InterfaceView("PublicView", ["summary"]),
            glue_stacks=[[CallQuotaCapability.for_calls(
                3, applicability="always")]])

        registry.bind("sim/full", full_or)
        registry.bind("sim/partner", partner_or)
        registry.bind("sim/public", metered_or)

        # ---- clients discover through the *remote* name server --------
        ns = campus_client.bind(ns_oref).narrow()
        assert sorted(ns.names()) == ["sim/full", "sim/partner",
                                      "sim/public"]

        # Lab-side operator: full access, plain protocol (same LAN).
        operator = lab_client.bind(full_or)
        assert operator.selected_proto_id == "nexus"
        assert operator.narrow().step(5) == 5

        # Campus partner: resolves its OR remotely; authenticated and
        # encrypted because it is off-site.
        partner_gp = campus_client.bind(resolve_oref(ns, "sim/partner"))
        assert partner_gp.describe_selection() == "glue[auth+encryption]"
        partner_stub = partner_gp.narrow()
        assert partner_stub.feed([1.0, 2.0, 3.0]) == 3
        assert partner_stub.summary()["steps"] == 5
        # The view hides step(); the server would also reject it.
        assert not hasattr(partner_stub, "step")

        # Metered public client.
        public_gp = campus_client.bind(resolve_oref(ns, "sim/public"))
        public = public_gp.narrow()
        for _ in range(3):
            public.summary()
        with pytest.raises((QuotaExceededError, RemoteException)):
            public.summary()

        # ---- migration under load -------------------------------------
        # The lab machine overheats; the balancer ships the simulation
        # to the campus host.  The partner's protocol adapts: still
        # authenticated (different LAN? campus-server and campus-ws are
        # the same LAN -> capabilities stop applying entirely).
        selections = []
        partner_gp.hooks.on(
            "selection",
            lambda e: selections.append(e.data["proto_id"]))

        lab.monitor.busy_fraction.value = 0.95
        campus_host.monitor.busy_fraction.value = 0.05
        # Note: three exports share the servant; migrate the partner-visible
        # object id explicitly.
        from repro.core.migration import migrate

        migrate(lab, partner_or.object_id, campus_host, by_value=True)

        summary = partner_gp.narrow().summary()
        assert summary["steps"] == 5             # state travelled
        assert partner_gp.selected_proto_id == "nexus"  # caps dropped
        assert "glue" in selections              # ...but used before

        # Lab operator still reaches the original (unmigrated) export.
        assert operator.narrow().summary()["steps"] == 5

        # ---- accounting ------------------------------------------------
        assert sim.log.total_messages > 20
        assert sim.clock.now() > 0

    def test_load_balancer_with_name_refresh(self, world):
        """After a balancer-driven migration, rebinding the name keeps
        *new* clients off the forwarding path entirely."""
        sim, orb = world
        lab = orb.context("lab2", machine="super")
        campus_host = orb.context("campus2", machine="campus-server")
        client_ctx = orb.context("client2", machine="campus-ws")
        registry = NameService()

        simulation = Simulation()
        oref = lab.export(simulation)
        registry.bind("sim", oref)

        gp_old = client_ctx.bind(registry.resolve("sim"))
        gp_old.invoke("step", 1)

        lab.monitor.record_request(oref.object_id, 1.0)
        lab.monitor.busy_fraction.value = 0.9
        campus_host.monitor.busy_fraction.value = 0.1
        balancer = LoadBalancer([lab, campus_host])
        events = balancer.rebalance_once()
        assert len(events) == 1
        registry.rebind("sim", events[0].new_oref)

        # A fresh client resolves the new location directly.
        gp_new = client_ctx.bind(registry.resolve("sim"))
        assert gp_new.oref.context_id == "campus2"
        assert gp_new.invoke("summary")["steps"] == 1
        # The old GP still works through the forward.
        assert gp_old.invoke("summary")["steps"] == 1
