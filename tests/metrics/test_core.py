"""Tests for the metric instruments and registry."""

import threading

import pytest

from repro.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    nearest_rank,
)
from repro.simnet.clock import VirtualClock


class TestCounterGauge:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("open")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1.0
        g.set(7)
        assert g.value == 7.0

    def test_thread_safety(self):
        c = Counter("x")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestNearestRank:
    def test_matches_latency_tracker_definition(self):
        xs = sorted([5.0, 1.0, 3.0, 2.0, 4.0])
        assert nearest_rank(xs, 0.0) == 1.0
        assert nearest_rank(xs, 0.5) == 3.0
        assert nearest_rank(xs, 1.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)


class TestHistogram:
    def test_snapshot(self):
        h = Histogram("lat")
        for v in [0.1, 0.2, 0.3, 0.4]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 0.1 and snap["max"] == 0.4
        assert snap["p50"] == 0.3
        assert snap["p99"] == 0.4

    def test_empty_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p99"] is None

    def test_sample_cap(self):
        h = Histogram("lat", max_samples=10)
        for i in range(25):
            h.observe(float(i))
        assert h.count == 25                  # totals keep counting
        assert len(h._dist._values) <= 10     # memory stays bounded


class TestTimeSeries:
    def test_buckets_on_virtual_clock(self):
        clock = VirtualClock()
        s = TimeSeries("req", clock, bucket_seconds=1.0)
        s.observe(1.0)
        clock.advance(0.5)
        s.observe(1.0)
        clock.advance(1.0)           # t=1.5 -> bucket 1
        s.observe(1.0)
        snap = s.snapshot()
        assert [b["bucket"] for b in snap] == [0, 1]
        assert snap[0]["count"] == 2
        assert snap[1]["count"] == 1
        assert snap[0]["start"] == 0.0 and snap[1]["start"] == 1.0

    def test_explicit_timestamp(self):
        s = TimeSeries("req", VirtualClock(), bucket_seconds=2.0)
        s.observe(3.0, at=5.0)
        assert s.bucket(2)["sum"] == 3.0
        assert s.bucket(0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("x", VirtualClock(), bucket_seconds=0)


class TestMetricsRegistry:
    def test_create_or_get(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.series("s") is reg.series("s")

    def test_snapshot_is_plain_and_comparable(self):
        def build():
            clock = VirtualClock()
            reg = MetricsRegistry(clock=clock, bucket_seconds=1.0)
            reg.counter("reqs").inc(3)
            reg.gauge("open").set(1)
            reg.histogram("lat").observe(0.25)
            reg.series("reqs").observe(1.0)
            clock.advance(1.5)
            reg.series("reqs").observe(1.0)
            return reg.snapshot()

        a, b = build(), build()
        assert a == b
        assert a["counters"]["reqs"] == 3.0
        assert a["series"]["reqs"][1]["bucket"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}, "series": {}}
