"""Tests for degradation curves and the envelope assertion."""

import pytest

from repro.metrics import (
    CurveBucket,
    DegradationCurve,
    DegradationEnvelopeError,
    MetricsRecorder,
    assert_degradation,
)
from repro.simnet.clock import VirtualClock


def bucket(index, ok, errors=0, dt=1.0, retries=0):
    completed = ok + errors
    return CurveBucket(
        index=index, start=index * dt, duration=dt, requests=completed,
        ok=ok, errors=errors, goodput=ok / dt,
        error_rate=(errors / completed) if completed else 0.0,
        p50=None, p99=None, retries=retries, hedges=0, faults=0)


def curve(goodputs):
    return DegradationCurve(
        bucket_seconds=1.0,
        buckets=[bucket(i, ok) for i, ok in enumerate(goodputs)])


class TestAssertDegradation:
    def test_flat_curve_passes(self):
        summary = assert_degradation(curve([10, 10, 10]), max_dip=0.1,
                                     recover_within=1.0)
        assert summary["dip"] == 0.0
        assert summary["baseline"] == 10.0

    def test_dip_within_envelope(self):
        summary = assert_degradation(curve([10, 4, 9]), max_dip=0.7,
                                     recover_within=2.0)
        assert summary["trough_start"] == 1.0
        assert summary["recovered_at"] == 2.0

    def test_too_deep_dip_raises(self):
        with pytest.raises(DegradationEnvelopeError, match="dipped"):
            assert_degradation(curve([10, 1, 10]), max_dip=0.5)

    def test_no_recovery_raises(self):
        with pytest.raises(DegradationEnvelopeError, match="recover"):
            assert_degradation(curve([10, 2, 2, 2, 2]),
                               recover_within=2.0)

    def test_late_recovery_raises(self):
        with pytest.raises(DegradationEnvelopeError, match="recover"):
            assert_degradation(curve([10, 2, 2, 2, 9]),
                               recover_within=2.0)

    def test_zero_baseline_raises(self):
        with pytest.raises(DegradationEnvelopeError, match="baseline"):
            assert_degradation(curve([0, 5, 5]))

    def test_empty_curve_raises(self):
        with pytest.raises(DegradationEnvelopeError, match="empty"):
            assert_degradation(DegradationCurve(1.0, []))

    def test_baseline_buckets_window(self):
        summary = assert_degradation(curve([10, 20, 3, 12]),
                                     baseline_buckets=2, max_dip=0.9)
        assert summary["baseline"] == 15.0
        with pytest.raises(ValueError):
            assert_degradation(curve([10]), baseline_buckets=5)


class TestCurveFromRecorder:
    def test_gap_free_and_edge_normalized(self):
        clock = VirtualClock()
        rec = MetricsRecorder(clock=clock, bucket_seconds=1.0)
        reg = rec.registry
        reg.series("requests").observe(1.0)
        reg.series("latency").observe(0.01)
        clock.advance(2.2)                       # bucket 1 stays empty
        reg.series("requests").observe(1.0)
        reg.series("errors").observe(1.0)
        c = DegradationCurve.from_recorder(rec, t_start=0.0, t_end=2.5)
        assert [b.index for b in c.buckets] == [0, 1, 2]
        assert c.buckets[1].requests == 0
        assert c.buckets[1].goodput == 0.0
        assert c.buckets[2].error_rate == 0.5
        # last bucket covers only 0.5s of the window
        assert c.buckets[2].duration == pytest.approx(0.5)
        assert c.buckets[2].goodput == pytest.approx(2.0)

    def test_to_dicts_round_trip(self):
        c = curve([5, 3])
        dicts = c.to_dicts()
        assert dicts[0]["goodput"] == 5.0
        assert dicts == curve([5, 3]).to_dicts()
