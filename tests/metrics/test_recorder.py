"""Tests for MetricsRecorder: hook bus -> aggregated metrics."""

from repro.core.instrumentation import HookBus
from repro.metrics import RECORDED_EVENTS, MetricsRecorder
from repro.simnet.clock import VirtualClock


def make(clock=None):
    bus = HookBus()
    rec = MetricsRecorder(clock=clock or VirtualClock(),
                          bucket_seconds=1.0).attach(bus)
    return bus, rec


class TestRecorderCounting:
    def test_request_ok_and_error(self):
        bus, rec = make()
        bus.emit("request", method="m", proto_id="nexus", outcome="ok",
                 duration=0.01)
        bus.emit("request", method="m", proto_id="nexus", outcome="ok",
                 duration=0.03)
        bus.emit("request", method="m", proto_id="nexus",
                 outcome="error", error=RuntimeError("x"), duration=0.02)
        snap = rec.snapshot()
        assert snap["counters"]["requests_total"] == 3
        assert snap["counters"]["requests_ok"] == 2
        assert snap["counters"]["requests_error"] == 1
        assert snap["histograms"]["request_latency_seconds"]["count"] == 2
        assert snap["histograms"]["request_latency_seconds"]["p50"] == 0.03

    def test_resilience_events(self):
        bus, rec = make()
        bus.emit("retry", method="m", attempt=1, backoff=0.05)
        bus.emit("failover", method="m", from_proto="a", to_proto="b")
        bus.emit("budget_exhausted", method="m", tokens=0.0)
        bus.emit("hedge", method="m", delay=0.01)
        bus.emit("hedge_win", method="m", latency=0.02)
        bus.emit("hedge_loss", method="m", latency=0.02)
        c = rec.snapshot()["counters"]
        assert c["retries_total"] == 1
        assert c["failovers_total"] == 1
        assert c["budget_exhausted_total"] == 1
        assert c["hedges_total"] == 1
        assert c["hedge_wins_total"] == 1
        assert c["hedge_losses_total"] == 1

    def test_breaker_gauge(self):
        bus, rec = make()
        bus.emit("breaker_open", context_id="c", proto_id="p")
        bus.emit("breaker_open", context_id="c", proto_id="q")
        bus.emit("breaker_close", context_id="c", proto_id="p")
        snap = rec.snapshot()
        assert snap["gauges"]["breakers_open"] == 1.0
        assert snap["counters"]["breaker_open_total"] == 2

    def test_fault_kinds(self):
        bus, rec = make()
        bus.emit("fault_injected", fault="drop", detail="a->b")
        bus.emit("fault_injected", fault="drop", detail="a->b")
        bus.emit("fault_injected", fault="partition", detail="a->b")
        c = rec.snapshot()["counters"]
        assert c["faults_injected_total"] == 3
        assert c["faults_injected.drop"] == 2
        assert c["faults_injected.partition"] == 1

    def test_lifecycle_events(self):
        bus, rec = make()
        bus.emit("selection", proto_id="p", method="m")
        bus.emit("moved", from_context="a", to_context="b")
        bus.emit("migration", object_id="o")
        bus.emit("fault_phase", at=1.0, now=1.0, label="heal")
        c = rec.snapshot()["counters"]
        assert c["selections_total"] == 1
        assert c["moved_total"] == 1
        assert c["migrations_total"] == 1
        assert c["fault_phases_total"] == 1

    def test_series_follow_the_clock(self):
        clock = VirtualClock()
        bus, rec = make(clock)
        bus.emit("request", outcome="ok", duration=0.01)
        clock.advance(2.5)
        bus.emit("request", outcome="ok", duration=0.02)
        series = rec.series_snapshot("requests")
        assert [b["bucket"] for b in series] == [0, 2]


class TestRecorderWiring:
    def test_attach_is_idempotent(self):
        bus, rec = make()
        rec.attach(bus)          # second attach: no double counting
        bus.emit("retry", attempt=1)
        assert rec.counter_value("retries_total") == 1
        assert rec.attached_buses == 1

    def test_multi_bus_fan_in(self):
        rec = MetricsRecorder(clock=VirtualClock())
        buses = [HookBus(), HookBus()]
        for bus in buses:
            rec.attach(bus)
        for bus in buses:
            bus.emit("retry", attempt=1)
        assert rec.counter_value("retries_total") == 2

    def test_detach(self):
        bus, rec = make()
        rec.detach(bus)
        bus.emit("retry", attempt=1)
        assert rec.counter_value("retries_total") == 0
        assert bus.handler_count() == 0

    def test_detach_all(self):
        rec = MetricsRecorder(clock=VirtualClock())
        buses = [HookBus(), HookBus()]
        for bus in buses:
            rec.attach(bus)
        rec.detach()
        assert rec.attached_buses == 0
        assert all(b.handler_count() == 0 for b in buses)

    def test_covers_every_recorded_event(self):
        """Feeding one of each recorded event touches the registry for
        all of them — no event silently ignored by the recorder."""
        bus, rec = make()
        for kind in RECORDED_EVENTS:
            bus.emit(kind, outcome="ok", duration=0.01, fault="drop")
        counters = rec.snapshot()["counters"]
        assert counters["requests_total"] == 1
        assert counters["fault_phases_total"] == 1
        # the bus never detached a handler for raising
        assert bus.errors == []

    def test_reset_keeps_subscriptions(self):
        bus, rec = make()
        bus.emit("retry", attempt=1)
        rec.reset()
        bus.emit("retry", attempt=1)
        assert rec.counter_value("retries_total") == 1
