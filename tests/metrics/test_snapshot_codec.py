"""Property tests for the MetricsRegistry snapshot wire codec.

A node's snapshot crossing the control channel must arrive *exactly* —
the proc harness compares merged reports with ``==`` — and corrupted
bytes must be rejected, never misread into plausible-looking metrics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.instrumentation import HookBus
from repro.exceptions import MarshalError
from repro.metrics.codec import SNAPSHOT_KIND, decode_snapshot, \
    encode_snapshot
from repro.metrics.core import MetricsRegistry
from repro.metrics.recorder import MetricsRecorder
from repro.serialization.xdr import XdrEncoder

finite = st.floats(allow_nan=False, allow_infinity=False)
section_values = st.one_of(
    st.none(), finite, st.integers(min_value=-2**31, max_value=2**31),
    st.dictionaries(st.text(max_size=12),
                    st.one_of(st.none(), finite,
                              st.integers(-2**31, 2**31)),
                    max_size=4),
    st.lists(st.dictionaries(st.text(max_size=8),
                             st.one_of(finite, st.integers(-2**31, 2**31)),
                             max_size=3), max_size=3))
snapshots_st = st.fixed_dictionaries({
    "counters": st.dictionaries(st.text(max_size=20), section_values,
                                max_size=8),
    "gauges": st.dictionaries(st.text(max_size=20), section_values,
                              max_size=8),
    "histograms": st.dictionaries(st.text(max_size=20), section_values,
                                  max_size=8),
    "series": st.dictionaries(st.text(max_size=20), section_values,
                              max_size=8),
})


class TestRoundtrip:
    @given(snapshots_st)
    def test_roundtrip_exact(self, snapshot):
        assert decode_snapshot(encode_snapshot(snapshot)) == snapshot

    def test_live_registry_snapshot_roundtrips(self):
        """A snapshot from the real instruments — histograms, series,
        empty distributions and all — survives the wire unchanged."""
        reg = MetricsRegistry()
        reg.counter("requests_total").inc(41)
        reg.gauge("procs_alive").set(3.0)
        reg.histogram("latency").observe(0.004)
        reg.histogram("latency").observe(0.009)
        reg.histogram("empty")            # None-valued snapshot section
        reg.series("requests").observe(1.0)
        snap = reg.snapshot()
        assert decode_snapshot(encode_snapshot(snap)) == snap

    def test_recorder_snapshot_roundtrips(self):
        """The aggregation layer's output is codec-clean too."""
        bus = HookBus()
        recorder = MetricsRecorder().attach(bus)
        bus.emit("request", method="m", proto_id="nexus", outcome="ok",
                 duration=0.002)
        bus.emit("proc_spawn", node="n0", pid=1)
        bus.emit("proc_exit", node="n0", pid=1, returncode=-9,
                 how="sigkill")
        snap = recorder.snapshot()
        decoded = decode_snapshot(encode_snapshot(snap))
        assert decoded == snap
        assert decoded["counters"]["proc_exits.sigkill"] == 1.0


class TestRejection:
    @given(snapshots_st)
    @settings(max_examples=40)
    def test_truncation_always_rejected(self, snapshot):
        wire = encode_snapshot(snapshot)
        for cut in range(0, len(wire), max(1, len(wire) // 16)):
            if cut == len(wire):
                continue
            with pytest.raises(MarshalError):
                decode_snapshot(wire[:cut])

    @given(snapshots_st, st.binary(min_size=1, max_size=16))
    @settings(max_examples=40)
    def test_trailing_garbage_rejected(self, snapshot, junk):
        with pytest.raises(MarshalError):
            decode_snapshot(encode_snapshot(snapshot) + junk)

    def test_foreign_kind_rejected(self):
        enc = XdrEncoder()
        enc.pack_uint(0xB0A0)  # a BatchRequest, not a snapshot
        with pytest.raises(MarshalError, match="not a metrics snapshot"):
            decode_snapshot(enc.getvalue())

    def test_non_dict_payload_rejected(self):
        from repro.serialization.marshal import Marshaller

        enc = XdrEncoder()
        enc.pack_uint(SNAPSHOT_KIND)
        Marshaller().encode_value(enc, [1, 2, 3])
        with pytest.raises(MarshalError, match="not a dict"):
            decode_snapshot(enc.getvalue())

    def test_missing_section_rejected_both_ways(self):
        bad = {"counters": {}, "gauges": {}, "histograms": {}}
        with pytest.raises(MarshalError, match="series"):
            encode_snapshot(bad)
        enc = XdrEncoder()
        enc.pack_uint(SNAPSHOT_KIND)
        from repro.serialization.marshal import Marshaller

        Marshaller().encode_value(enc, bad)
        with pytest.raises(MarshalError, match="series"):
            decode_snapshot(enc.getvalue())

    def test_non_dict_input_rejected(self):
        with pytest.raises(MarshalError, match="must be a dict"):
            encode_snapshot([("counters", {})])

    def test_empty_buffer_rejected(self):
        with pytest.raises(MarshalError):
            decode_snapshot(b"")
