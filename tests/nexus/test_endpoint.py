"""Tests for endpoints, startpoints, and multi-method serving."""

import threading

import pytest

from repro.exceptions import RemoteException, RemoteInvocationError
from repro.nexus.endpoint import Endpoint, Startpoint
from repro.nexus.multimethod import MultiMethodServer
from repro.simnet.presets import two_machine_lan
from repro.simnet.simulator import NetworkSimulator
from repro.transport.inproc import InProcTransport
from repro.transport.simtransport import SimTransport
from repro.transport.tcp import TcpTransport


def make_echo_endpoint(name="echo"):
    ep = Endpoint(name)
    ep.register("echo", lambda payload: bytes(payload))
    ep.register("upper", lambda payload: bytes(payload).upper())

    def boom(payload):
        raise ValueError("intentional failure")

    ep.register("boom", boom)
    return ep


@pytest.fixture(params=["inproc", "tcp"])
def threaded_world(request):
    """(startpoint, server) over a real threaded transport."""
    transport = {"inproc": InProcTransport, "tcp": TcpTransport}[
        request.param]()
    ep = make_echo_endpoint()
    listener = transport.listen()
    ep.serve_listener(listener)
    channel = transport.connect(listener.address)
    sp = Startpoint(channel, timeout=10.0)
    yield sp, ep
    sp.close()
    ep.stop()


@pytest.fixture
def sim_world():
    sim = NetworkSimulator(two_machine_lan())
    ta = SimTransport(sim, "A")
    tb = SimTransport(sim, "B")
    ep = make_echo_endpoint()
    listener = tb.listen()
    ep.serve_sim_listener(listener)
    channel = ta.connect(listener.address)
    return Startpoint(channel), ep, sim


class TestThreadedService:
    def test_call_roundtrip(self, threaded_world):
        sp, _ = threaded_world
        assert sp.call("echo", b"hello") == b"hello"

    def test_multiple_calls(self, threaded_world):
        sp, _ = threaded_world
        for i in range(20):
            assert sp.call("upper", f"msg{i}".encode()) == \
                f"MSG{i}".upper().encode()

    def test_remote_exception_propagates(self, threaded_world):
        sp, _ = threaded_world
        with pytest.raises(RemoteException) as err:
            sp.call("boom", b"")
        assert err.value.remote_type == "ValueError"
        assert "intentional failure" in str(err.value)

    def test_unknown_handler_is_remote_error(self, threaded_world):
        sp, _ = threaded_world
        with pytest.raises(RemoteException) as err:
            sp.call("nope", b"")
        assert err.value.remote_type == "RemoteInvocationError"

    def test_channel_survives_remote_error(self, threaded_world):
        sp, _ = threaded_world
        with pytest.raises(RemoteException):
            sp.call("boom", b"")
        assert sp.call("echo", b"still alive") == b"still alive"

    def test_oneway_returns_none(self, threaded_world):
        sp, ep = threaded_world
        got = []
        done = threading.Event()

        def record(payload):
            got.append(bytes(payload))
            done.set()
            return b""

        ep.register("record", record)
        assert sp.call("record", b"fire-and-forget", oneway=True) is None
        assert done.wait(timeout=5.0)
        assert got == [b"fire-and-forget"]

    def test_oneway_error_is_silent(self, threaded_world):
        sp, _ = threaded_world
        assert sp.call("boom", b"", oneway=True) is None
        # Channel must remain usable afterwards.
        assert sp.call("echo", b"ok") == b"ok"

    def test_concurrent_clients(self, threaded_world):
        sp, ep = threaded_world
        results = []

        def hammer():
            for i in range(10):
                results.append(sp.call("echo", f"{i}".encode()))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(results) == 40


class TestInlineService:
    def test_call_roundtrip(self, sim_world):
        sp, _, sim = sim_world
        assert sp.call("echo", b"virtual hello") == b"virtual hello"
        assert sim.clock.now() > 0

    def test_remote_exception(self, sim_world):
        sp, _, _ = sim_world
        with pytest.raises(RemoteException):
            sp.call("boom", b"")

    def test_virtual_time_scales_with_payload(self, sim_world):
        sp, _, sim = sim_world
        t0 = sim.clock.now()
        sp.call("echo", b"x" * 1000)
        small = sim.clock.now() - t0
        t0 = sim.clock.now()
        sp.call("echo", b"x" * 1_000_000)
        large = sim.clock.now() - t0
        assert large > 10 * small

    def test_late_serve_adopts_pending_connections(self):
        sim = NetworkSimulator(two_machine_lan())
        ta = SimTransport(sim, "A")
        tb = SimTransport(sim, "B")
        listener = tb.listen()
        channel = ta.connect(listener.address)  # connect BEFORE serving
        ep = make_echo_endpoint()
        ep.serve_sim_listener(listener)
        sp = Startpoint(channel)
        assert sp.call("echo", b"adopted") == b"adopted"


class TestEndpointTable:
    def test_register_requires_name(self):
        with pytest.raises(ValueError):
            Endpoint().register("", lambda p: b"")

    def test_unregister(self):
        ep = make_echo_endpoint()
        ep.unregister("echo")
        assert "echo" not in ep.handlers()

    def test_handlers_sorted(self):
        ep = make_echo_endpoint()
        assert ep.handlers() == ["boom", "echo", "upper"]

    def test_none_result_becomes_empty(self, sim_world):
        sp, ep, _ = sim_world
        ep.register("void", lambda p: None)
        assert sp.call("void", b"") == b""


class TestMultiMethod:
    def test_bind_several_transports(self):
        server = MultiMethodServer("svc")
        server.register("echo", lambda p: bytes(p))
        t1 = InProcTransport()
        t2 = TcpTransport()
        addr1 = server.bind(t1)
        addr2 = server.bind(t2)
        assert server.addresses == [addr1, addr2]
        try:
            for transport, addr in ((t1, addr1), (t2, addr2)):
                sp = Startpoint(transport.connect(addr), timeout=10.0)
                assert sp.call("echo", b"multi") == b"multi"
                sp.close()
        finally:
            server.stop()

    def test_bind_sim_transport_inline(self):
        sim = NetworkSimulator(two_machine_lan())
        server = MultiMethodServer("svc")
        server.register("echo", lambda p: bytes(p))
        tb = SimTransport(sim, "B")
        addr = server.bind(tb)
        ta = SimTransport(sim, "A")
        sp = Startpoint(ta.connect(addr))
        assert sp.call("echo", b"sim multi") == b"sim multi"
