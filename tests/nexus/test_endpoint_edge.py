"""Edge-case coverage for the Nexus layer: stray messages, lifecycle,
handler churn, and oneway-through-glue behaviour."""

import threading

import pytest

from repro.core import ORB
from repro.core.capabilities import CallQuotaCapability, TracingCapability
from repro.core.context import Placement
from repro.nexus.endpoint import Endpoint, Startpoint
from repro.nexus.rsr import RsrMessage
from repro.transport.inproc import InProcTransport

from tests.core.conftest import Counter


class FakeChannel:
    """Records sends; scripted receives."""

    def __init__(self):
        self.sent = []
        self.closed = False

    def send(self, data):
        self.sent.append(bytes(data))

    def recv(self, timeout=None):  # pragma: no cover - unused
        raise AssertionError

    def close(self):
        self.closed = True


class TestEndpointDispatch:
    def test_stray_reply_dropped(self):
        ep = Endpoint("e")
        channel = FakeChannel()
        stray = RsrMessage.reply(99, b"unsolicited").encode()
        ep.handle_message(stray, channel)  # must not raise or respond
        assert channel.sent == []

    def test_error_reply_for_unknown_handler(self):
        ep = Endpoint("e")
        channel = FakeChannel()
        req = RsrMessage.request(1, "missing", b"").encode()
        ep.handle_message(req, channel)
        reply = RsrMessage.decode(channel.sent[0])
        assert reply.is_error()

    def test_oneway_never_replies_even_on_error(self):
        ep = Endpoint("e")
        channel = FakeChannel()
        req = RsrMessage.request(1, "missing", b"", oneway=True).encode()
        ep.handle_message(req, channel)
        assert channel.sent == []

    def test_handler_replacement(self):
        ep = Endpoint("e")
        ep.register("h", lambda p: b"v1")
        ep.register("h", lambda p: b"v2")
        channel = FakeChannel()
        ep.handle_message(RsrMessage.request(1, "h", b"").encode(),
                          channel)
        assert RsrMessage.decode(channel.sent[0]).payload == b"v2"

    def test_unregister_then_call(self):
        ep = Endpoint("e")
        ep.register("h", lambda p: b"x")
        ep.unregister("h")
        channel = FakeChannel()
        ep.handle_message(RsrMessage.request(1, "h", b"").encode(),
                          channel)
        assert RsrMessage.decode(channel.sent[0]).is_error()


class TestEndpointLifecycle:
    def test_stop_unblocks_everything(self):
        transport = InProcTransport()
        ep = Endpoint("stopper")
        ep.register("echo", lambda p: bytes(p))
        listener = transport.listen()
        ep.serve_listener(listener)
        channel = transport.connect(listener.address)
        sp = Startpoint(channel, timeout=5.0)
        assert sp.call("echo", b"alive") == b"alive"
        ep.stop()
        # The server threads must have exited (stop joins them).
        import time

        deadline = time.time() + 5
        while time.time() < deadline:
            alive = [t for t in ep._threads if t.is_alive()]
            if not alive:
                break
            time.sleep(0.01)
        assert not [t for t in ep._threads if t.is_alive()]

    def test_stop_idempotent(self):
        ep = Endpoint("e")
        ep.stop()
        ep.stop()


class TestOnewayThroughGlue:
    @pytest.fixture
    def remote_pair(self):
        orb = ORB()
        server = orb.context("ow-s", placement=Placement("a", "al", "as"))
        client = orb.context("ow-c", placement=Placement("b", "bl", "bs"))
        yield server, client
        orb.shutdown()

    def test_oneway_glue_invocation(self, remote_pair):
        server, client = remote_pair
        counter = Counter()
        oref = server.export(counter, glue_stacks=[
            [CallQuotaCapability.for_calls(10, applicability="always")]])
        gp = client.bind(oref)
        assert gp.describe_selection() == "glue[quota]"
        gp.invoke_oneway("bump")
        import time

        deadline = time.time() + 5
        while counter.n == 0 and time.time() < deadline:
            time.sleep(0.005)
        assert counter.n == 1

    def test_oneway_glue_still_metered(self, remote_pair):
        server, client = remote_pair
        counter = Counter()
        oref = server.export(counter, glue_stacks=[
            [CallQuotaCapability.for_calls(2, applicability="always")]])
        gp = client.bind(oref)
        gp.invoke_oneway("bump")
        gp.invoke_oneway("bump")
        from repro.exceptions import QuotaExceededError

        with pytest.raises(QuotaExceededError):
            gp.invoke_oneway("bump")

    def test_oneway_glue_traced(self, remote_pair):
        server, client = remote_pair
        counter = Counter()
        oref = server.export(counter, glue_stacks=[
            [TracingCapability.describe()]])
        gp = client.bind(oref)
        gp.invoke_oneway("bump")
        glue_client = gp._client_for(gp.select_protocol())
        tracer = glue_client.capabilities[0]
        assert [e.direction for e in tracer.events] == ["request"]
