"""Endpoint lifecycle: idempotent stop, signal-safety, readiness.

The node worker stops its endpoint from a SIGTERM handler while the
parent may concurrently be tearing the same endpoint down over the
control channel — double-stop, stop-before-start, and stop-from-a-
serve-thread must all be orderly, and readiness must be observable
before any client is pointed at the listener.
"""

import threading

from repro.nexus.endpoint import Endpoint
from repro.transport.tcp import TcpTransport


class TestStopIdempotence:
    def test_double_stop_is_harmless(self):
        endpoint = Endpoint("e")
        endpoint.serve_listener(TcpTransport().listen())
        endpoint.stop()
        endpoint.stop()  # second call must be a no-op, not a re-teardown
        assert endpoint.stopping

    def test_stop_before_start_pins_stopped(self):
        endpoint = Endpoint("e")
        endpoint.stop()
        assert endpoint.stopping
        # Serving after stop is allowed but inert: the accept loop sees
        # the flag and exits instead of stranding connections.
        listener = TcpTransport().listen()
        endpoint.serve_listener(listener)
        endpoint.stop()

    def test_concurrent_stops_single_teardown(self):
        endpoint = Endpoint("e")
        endpoint.serve_listener(TcpTransport().listen())
        threads = [threading.Thread(target=endpoint.stop)
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)

    def test_request_stop_takes_no_locks(self):
        """The signal-handler entry point must work even while another
        thread holds the endpoint's internal lock (the exact state a
        signal can interrupt)."""
        endpoint = Endpoint("e")
        with endpoint._lock:           # simulate an interrupted critical
            endpoint.request_stop()    # section: must not deadlock
        assert endpoint.stopping
        endpoint.stop()

    def test_stop_from_registered_thread_skips_self_join(self):
        """A serve thread calling stop() on its own endpoint must not
        try to join itself."""
        endpoint = Endpoint("e")
        done = threading.Event()

        def stop_from_inside():
            endpoint.stop()
            done.set()

        worker = threading.Thread(target=stop_from_inside)
        with endpoint._lock:
            endpoint._threads.append(worker)
        worker.start()
        assert done.wait(timeout=10.0)
        worker.join(timeout=10.0)


class TestReadiness:
    def test_wait_ready_after_serve_listener(self):
        endpoint = Endpoint("e")
        try:
            assert not endpoint.wait_ready(timeout=0.0)
            endpoint.serve_listener(TcpTransport().listen())
            assert endpoint.wait_ready(timeout=10.0)
        finally:
            endpoint.stop()

    def test_wait_ready_times_out_when_never_served(self):
        endpoint = Endpoint("e")
        assert endpoint.wait_ready(timeout=0.05) is False
