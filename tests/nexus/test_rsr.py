"""Tests for the RSR wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import MarshalError
from repro.nexus.rsr import RsrFlags, RsrMessage


class TestConstructors:
    def test_request(self):
        m = RsrMessage.request(7, "invoke", b"args")
        assert m.is_request() and not m.is_reply()
        assert not m.is_oneway() and not m.is_error()
        assert m.handler == "invoke"

    def test_oneway_request(self):
        m = RsrMessage.request(7, "notify", b"", oneway=True)
        assert m.is_request() and m.is_oneway()

    def test_reply(self):
        m = RsrMessage.reply(7, b"result")
        assert m.is_reply() and not m.is_request() and not m.is_error()

    def test_error(self):
        m = RsrMessage.error(7, b"boom")
        assert m.is_reply() and m.is_error()


class TestWire:
    def test_roundtrip(self):
        m = RsrMessage.request(123456789, "method.name", b"\x00payload\xff")
        out = RsrMessage.decode(m.encode())
        assert out == m

    def test_reply_roundtrip(self):
        m = RsrMessage.error(2 ** 40, b"exception data")
        assert RsrMessage.decode(m.encode()) == m

    @given(st.integers(0, 2 ** 64 - 1), st.text(max_size=50),
           st.binary(max_size=500), st.booleans())
    def test_roundtrip_property(self, rid, handler, payload, oneway):
        m = RsrMessage.request(rid, handler, payload, oneway=oneway)
        assert RsrMessage.decode(m.encode()) == m

    def test_kindless_message_rejected(self):
        bogus = RsrMessage(flags=RsrFlags(0), request_id=1, handler="h",
                           payload=b"")
        with pytest.raises(MarshalError):
            RsrMessage.decode(bogus.encode())

    def test_payload_preserved_verbatim(self):
        payload = bytes(range(256))
        m = RsrMessage.request(1, "h", payload)
        assert RsrMessage.decode(m.encode()).payload == payload
