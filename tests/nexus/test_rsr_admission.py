"""RSR admission extensions: the META trailer (priority + remaining
deadline) and the OVERLOAD pushback reply, on the wire and in the
reply envelope."""

import pytest

from repro.core.request import (
    ReplyStatus,
    decode_reply,
    encode_reply_overload,
)
from repro.exceptions import OverloadError
from repro.nexus.rsr import RsrFlags, RsrMessage
from repro.serialization.marshal import (
    BatchRequest,
    Marshaller,
    decode_overload_info,
    encode_overload_info,
    peek_batch_count,
)


class TestMetaTrailer:
    def test_default_request_carries_no_trailer(self):
        m = RsrMessage.request(1, "echo", b"x")
        assert not (m.flags & RsrFlags.META)
        decoded = RsrMessage.decode(m.encode())
        assert decoded.priority == 0 and decoded.deadline is None

    def test_priority_round_trips(self):
        m = RsrMessage.request(2, "echo", b"x", priority=2)
        assert m.flags & RsrFlags.META
        decoded = RsrMessage.decode(m.encode())
        assert decoded.priority == 2
        assert decoded.deadline is None
        assert decoded.payload == b"x"

    def test_deadline_round_trips_as_remaining_seconds(self):
        m = RsrMessage.request(3, "echo", b"x", deadline=0.125)
        decoded = RsrMessage.decode(m.encode())
        assert decoded.deadline == 0.125
        assert decoded.priority == 0

    def test_priority_and_deadline_together(self):
        m = RsrMessage.request(4, "work", b"pay", priority=1,
                               deadline=2.5)
        decoded = RsrMessage.decode(m.encode())
        assert (decoded.priority, decoded.deadline) == (1, 2.5)
        assert decoded.handler == "work"

    def test_oneway_keeps_hints(self):
        m = RsrMessage.request(5, "fire", b"", oneway=True, priority=1,
                               deadline=1.0)
        decoded = RsrMessage.decode(m.encode())
        assert decoded.is_oneway()
        assert (decoded.priority, decoded.deadline) == (1, 1.0)


class TestOverloadReply:
    def test_overload_reply_round_trips(self):
        payload = encode_overload_info(0.05, "queue_full", depth=8)
        m = RsrMessage.overload(9, payload)
        decoded = RsrMessage.decode(m.encode())
        assert decoded.is_overload()
        assert decoded.is_reply() and decoded.is_error()
        info = decode_overload_info(decoded.payload)
        assert info == {"retry_after": 0.05, "reason": "queue_full",
                        "depth": 8}

    def test_plain_error_is_not_overload(self):
        assert not RsrMessage.error(1, b"boom").is_overload()

    def test_envelope_overload_raises_client_side(self):
        m = Marshaller()
        data = encode_reply_overload(m, 0.25, "deadline")
        with pytest.raises(OverloadError) as info:
            decode_reply(m, data)
        exc = info.value
        assert exc.retry_after == 0.25
        assert exc.reason == "deadline"
        # pushback means the request was *answered*, never dispatched:
        # the idempotence guard must always permit the retry
        assert not getattr(exc, "request_sent", False)
        assert not getattr(exc, "request_dispatched", False)

    def test_ok_reply_still_decodes(self):
        m = Marshaller()
        data = m.dumps_many([int(ReplyStatus.OK), 42])
        assert decode_reply(m, data) == 42


class TestBatchPeek:
    def test_peek_counts_members_without_decoding(self):
        payload = BatchRequest.of([b"a", b"bb", b"ccc"]).to_bytes()
        assert peek_batch_count(payload) == 3

    def test_peek_rejects_non_batch_bytes(self):
        assert peek_batch_count(b"") is None
        assert peek_batch_count(b"\x00\x01\x02\x03") is None
        m = Marshaller()
        assert peek_batch_count(m.dumps("not a batch")) is None
