"""Tests for HMAC, Diffie-Hellman, key store, principals, and ACLs."""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import AuthenticationError
from repro.security.acl import AccessControlList, Permission
from repro.security.dh import DEFAULT_DH_PARAMS, DhParams, DhPrivateKey
from repro.security.hmac_md import (
    constant_time_eq,
    hmac_sign,
    hmac_verify,
)
from repro.security.keys import KeyStore, Principal


class TestHmac:
    def test_matches_stdlib(self):
        for key in (b"k", b"a longer key", b"x" * 100):
            for msg in (b"", b"msg", b"payload" * 50):
                assert hmac_sign(key, msg) == std_hmac.new(
                    key, msg, hashlib.sha256).digest()

    @given(st.binary(min_size=1, max_size=200), st.binary(max_size=500))
    @settings(max_examples=50)
    def test_matches_stdlib_property(self, key, msg):
        assert hmac_sign(key, msg) == std_hmac.new(
            key, msg, hashlib.sha256).digest()

    def test_verify_accepts(self):
        tag = hmac_sign(b"k", b"msg")
        assert hmac_verify(b"k", b"msg", tag)

    def test_verify_rejects_tamper(self):
        tag = bytearray(hmac_sign(b"k", b"msg"))
        tag[0] ^= 1
        assert not hmac_verify(b"k", b"msg", bytes(tag))

    def test_verify_rejects_wrong_key(self):
        tag = hmac_sign(b"k1", b"msg")
        assert not hmac_verify(b"k2", b"msg", tag)

    def test_constant_time_eq(self):
        assert constant_time_eq(b"abc", b"abc")
        assert not constant_time_eq(b"abc", b"abd")
        assert not constant_time_eq(b"abc", b"ab")


class TestDh:
    def test_shared_secret_agreement(self):
        a = DhPrivateKey(seed=1)
        b = DhPrivateKey(seed=2)
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_derive_key_agreement_and_length(self):
        a = DhPrivateKey(seed=10)
        b = DhPrivateKey(seed=20)
        ka = a.derive_key(b.public, nbytes=16)
        kb = b.derive_key(a.public, nbytes=16)
        assert ka == kb and len(ka) == 16

    def test_derive_long_key(self):
        a = DhPrivateKey(seed=1)
        b = DhPrivateKey(seed=2)
        assert len(a.derive_key(b.public, nbytes=100)) == 100

    def test_different_pairs_different_secrets(self):
        a = DhPrivateKey(seed=1)
        b = DhPrivateKey(seed=2)
        c = DhPrivateKey(seed=3)
        assert a.shared_secret(b.public) != a.shared_secret(c.public)

    def test_public_value_in_range(self):
        a = DhPrivateKey(seed=5)
        assert 2 <= a.public <= DEFAULT_DH_PARAMS.p - 2

    def test_rejects_degenerate_peer(self):
        a = DhPrivateKey(seed=1)
        with pytest.raises(ValueError):
            a.shared_secret(0)
        with pytest.raises(ValueError):
            a.shared_secret(DEFAULT_DH_PARAMS.p - 1)

    def test_small_custom_group(self):
        params = DhParams(p=23, g=5)
        a = DhPrivateKey(params, seed=1)
        b = DhPrivateKey(params, seed=2)
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_degenerate_params_rejected(self):
        with pytest.raises(ValueError):
            DhParams(p=4, g=2)


class TestPrincipal:
    def test_str(self):
        assert str(Principal("alice", "lab.gov")) == "alice@lab.gov"

    def test_parse(self):
        assert Principal.parse("alice@lab.gov") == Principal("alice",
                                                             "lab.gov")
        assert Principal.parse("bob") == Principal("bob", "default")

    def test_hashable(self):
        assert {Principal("a"), Principal("a")} == {Principal("a")}


class TestKeyStore:
    def test_install_lookup(self):
        ks = KeyStore()
        ks.install(Principal("alice"), b"secret")
        assert ks.lookup(Principal("alice")) == b"secret"

    def test_missing_principal_raises(self):
        with pytest.raises(AuthenticationError):
            KeyStore().lookup(Principal("ghost"))

    def test_generate_returns_installed_key(self):
        ks = KeyStore()
        key = ks.generate(Principal("bob"), nbytes=24)
        assert len(key) == 24
        assert ks.lookup(Principal("bob")) == key

    def test_generate_is_seeded(self):
        k1 = KeyStore(seed=1).generate(Principal("a"))
        k2 = KeyStore(seed=1).generate(Principal("a"))
        assert k1 == k2

    def test_revoke(self):
        ks = KeyStore()
        ks.install(Principal("a"), b"k")
        ks.revoke(Principal("a"))
        assert Principal("a") not in ks

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            KeyStore().install(Principal("a"), b"")

    def test_contains_and_listing(self):
        ks = KeyStore()
        ks.install(Principal("a"), b"k")
        assert Principal("a") in ks
        assert ks.known_principals() == [Principal("a")]


class TestAcl:
    def test_deny_by_default(self):
        acl = AccessControlList()
        assert not acl.allows(Principal("x"), "anything")

    def test_grant_specific(self):
        acl = AccessControlList()
        acl.grant(Principal("alice"), ["get_map"])
        assert acl.allows(Principal("alice"), "get_map")
        assert not acl.allows(Principal("alice"), "set_map")

    def test_wildcard_patterns(self):
        acl = AccessControlList()
        acl.grant(Principal("alice"), ["get_*"])
        assert acl.allows(Principal("alice"), "get_weather")
        assert not acl.allows(Principal("alice"), "put_weather")

    def test_anonymous_default_rule(self):
        acl = AccessControlList()
        acl.grant(None, ["ping"])
        assert acl.allows(Principal("anyone"), "ping")
        assert acl.allows(None, "ping")

    def test_revoke(self):
        acl = AccessControlList()
        acl.grant(Principal("a"), ["*"])
        acl.revoke(Principal("a"))
        assert not acl.allows(Principal("a"), "m")

    def test_permissions(self):
        acl = AccessControlList()
        acl.grant(Principal("admin"), ["*"],
                  [Permission.INVOKE, Permission.MIGRATE])
        assert acl.has_permission(Principal("admin"), Permission.MIGRATE)
        assert not acl.has_permission(Principal("admin"), Permission.ADMIN)

    def test_permission_default_rule(self):
        acl = AccessControlList()
        acl.grant(None, [], [Permission.INVOKE])
        assert acl.has_permission(Principal("x"), Permission.INVOKE)
