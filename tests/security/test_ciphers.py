"""Tests for the stream cipher and XTEA-CTR block cipher."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.security.block_cipher import XteaCtr
from repro.security.stream_cipher import StreamCipher


class TestStreamCipher:
    def test_roundtrip(self):
        c = StreamCipher(b"key")
        msg = b"attack at dawn"
        assert c.decrypt(c.encrypt(msg, nonce=7), nonce=7) == msg

    def test_ciphertext_differs_from_plaintext(self):
        c = StreamCipher(b"key")
        msg = b"a" * 64
        assert c.encrypt(msg, nonce=1) != msg

    def test_nonce_changes_ciphertext(self):
        c = StreamCipher(b"key")
        msg = b"hello world!"
        assert c.encrypt(msg, 1) != c.encrypt(msg, 2)

    def test_key_changes_ciphertext(self):
        msg = b"hello world!"
        assert StreamCipher(b"k1").encrypt(msg, 1) != \
            StreamCipher(b"k2").encrypt(msg, 1)

    def test_wrong_nonce_garbles(self):
        c = StreamCipher(b"key")
        msg = b"hello world, some text"
        assert c.decrypt(c.encrypt(msg, 1), 2) != msg

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            StreamCipher(b"")

    def test_empty_message(self):
        assert StreamCipher(b"k").encrypt(b"", 0) == b""

    def test_large_message_chunked_keystream(self):
        c = StreamCipher(b"key")
        msg = bytes(np.arange(3_000_000, dtype=np.uint8) % 251)
        assert c.decrypt(c.encrypt(msg, 5), 5) == msg

    def test_chunking_is_seamless(self):
        # Keystream must be identical whether generated in one block or
        # via the chunked path.
        c = StreamCipher(b"key")
        small = c.keystream(3, 1 << 20)
        large = c.keystream(3, (1 << 20) + 10)
        np.testing.assert_array_equal(small, large[: 1 << 20])

    @given(st.binary(min_size=1, max_size=32), st.binary(max_size=2000),
           st.integers(0, 2 ** 64 - 1))
    @settings(max_examples=50)
    def test_roundtrip_property(self, key, msg, nonce):
        c = StreamCipher(key)
        assert c.decrypt(c.encrypt(msg, nonce), nonce) == msg

    def test_accepts_memoryview(self):
        c = StreamCipher(b"key")
        msg = b"payload"
        assert c.encrypt(memoryview(msg), 1) == c.encrypt(msg, 1)


class TestXteaReference:
    """Check the vectorized CTR path against the scalar reference and a
    published XTEA test vector."""

    def test_published_vector(self):
        # Known-answer test: all-zero key, all-zero block.
        cipher = XteaCtr(bytes(16))
        v0, v1 = cipher.encrypt_block(0x00000000, 0x00000000)
        assert (v0, v1) == (0xDEE9D4D8, 0xF7131ED9)

    def test_block_roundtrip(self):
        cipher = XteaCtr(bytes(range(16)))
        v0, v1 = cipher.encrypt_block(0x01234567, 0x89ABCDEF)
        assert cipher.decrypt_block(v0, v1) == (0x01234567, 0x89ABCDEF)

    def test_ctr_keystream_matches_scalar(self):
        key = bytes(range(16))
        cipher = XteaCtr(key)
        nonce = 0x0000000100000002
        ks = cipher.keystream(nonce, 24)
        # Recompute the first three blocks with the scalar primitive.
        expected = bytearray()
        for i in range(3):
            ctr = nonce + i
            v0, v1 = cipher.encrypt_block(ctr >> 32, ctr & 0xFFFFFFFF)
            expected += v0.to_bytes(4, "big") + v1.to_bytes(4, "big")
        assert bytes(ks) == bytes(expected)


class TestXteaCtr:
    def test_roundtrip(self):
        c = XteaCtr(b"0123456789abcdef")
        msg = b"the quick brown fox jumps over the lazy dog"
        assert c.decrypt(c.encrypt(msg, 9), 9) == msg

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            XteaCtr(b"short")

    def test_nonce_sensitivity(self):
        c = XteaCtr(b"0123456789abcdef")
        msg = b"x" * 32
        assert c.encrypt(msg, 1) != c.encrypt(msg, 2)

    def test_empty(self):
        c = XteaCtr(b"0123456789abcdef")
        assert c.encrypt(b"", 1) == b""

    def test_non_block_multiple_length(self):
        c = XteaCtr(b"0123456789abcdef")
        msg = b"abc"  # 3 bytes, not a multiple of the 8-byte block
        assert c.decrypt(c.encrypt(msg, 4), 4) == msg

    @given(st.binary(max_size=500), st.integers(0, 2 ** 64 - 1))
    @settings(max_examples=30)
    def test_roundtrip_property(self, msg, nonce):
        c = XteaCtr(b"fedcba9876543210")
        assert c.decrypt(c.encrypt(msg, nonce), nonce) == msg

    def test_large_payload(self):
        c = XteaCtr(b"0123456789abcdef")
        msg = np.random.default_rng(1).integers(
            0, 256, size=500_000, dtype=np.uint8).tobytes()
        assert c.decrypt(c.encrypt(msg, 11), 11) == msg
