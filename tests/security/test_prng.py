"""Tests for the deterministic PRNGs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.security.prng import Pcg32, XorShift128


class TestXorShift128:
    def test_deterministic(self):
        a = XorShift128(42)
        b = XorShift128(42)
        assert [a.next_u64() for _ in range(10)] == \
            [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = XorShift128(1)
        b = XorShift128(2)
        assert [a.next_u64() for _ in range(5)] != \
            [b.next_u64() for _ in range(5)]

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            XorShift128(-1)

    def test_zero_seed_ok(self):
        gen = XorShift128(0)
        assert gen.next_u64() != gen.next_u64()

    def test_output_range(self):
        gen = XorShift128(7)
        for _ in range(100):
            v = gen.next_u64()
            assert 0 <= v < 2 ** 64

    def test_fill_block_length(self):
        gen = XorShift128(1)
        for n in (0, 1, 7, 8, 9, 100):
            assert len(XorShift128(1).fill_block(n)) == n
        assert gen.fill_block(16).dtype == np.uint8

    def test_fill_block_matches_words(self):
        words = XorShift128(5)
        blocks = XorShift128(5)
        expected = np.array([words.next_u64() for _ in range(2)],
                            dtype=np.uint64).view(np.uint8)
        np.testing.assert_array_equal(blocks.fill_block(16), expected)

    def test_reasonable_bit_balance(self):
        gen = XorShift128(9)
        block = gen.fill_block(100_000)
        ones = np.unpackbits(block).mean()
        assert 0.49 < ones < 0.51


class TestPcg32:
    def test_deterministic(self):
        assert [Pcg32(3).next_u32() for _ in range(1)] == \
            [Pcg32(3).next_u32() for _ in range(1)]
        a, b = Pcg32(3), Pcg32(3)
        assert [a.next_u32() for _ in range(20)] == \
            [b.next_u32() for _ in range(20)]

    def test_streams_independent(self):
        a = Pcg32(3, stream=0)
        b = Pcg32(3, stream=1)
        assert [a.next_u32() for _ in range(5)] != \
            [b.next_u32() for _ in range(5)]

    def test_uniform_range(self):
        rng = Pcg32(11)
        xs = [rng.uniform() for _ in range(1000)]
        assert all(0.0 <= x < 1.0 for x in xs)
        assert 0.4 < sum(xs) / len(xs) < 0.6

    @given(st.integers(-50, 50), st.integers(0, 100))
    def test_randint_bounds(self, lo, width):
        rng = Pcg32(1)
        hi = lo + width
        for _ in range(20):
            assert lo <= rng.randint(lo, hi) <= hi

    def test_randint_invalid(self):
        with pytest.raises(ValueError):
            Pcg32(1).randint(5, 4)

    def test_expovariate_positive(self):
        rng = Pcg32(2)
        xs = [rng.expovariate(2.0) for _ in range(2000)]
        assert all(x > 0 for x in xs)
        # Mean of Exp(2) is 0.5.
        assert 0.4 < sum(xs) / len(xs) < 0.6

    def test_expovariate_invalid_rate(self):
        with pytest.raises(ValueError):
            Pcg32(1).expovariate(0.0)

    def test_choice(self):
        rng = Pcg32(4)
        seq = ["a", "b", "c"]
        assert all(rng.choice(seq) in seq for _ in range(20))

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            Pcg32(1).choice([])

    def test_bytes_length_and_determinism(self):
        assert Pcg32(9).bytes(10) == Pcg32(9).bytes(10)
        assert len(Pcg32(9).bytes(13)) == 13
