"""Property tests for the BatchRequest/BatchReply wire records.

The multi-request record is the foundation the whole batching layer
stands on, so it gets the adversarial treatment: arbitrary sub-request
counts, sizes, and id interleavings must round-trip exactly; any
truncation or trailing garbage must be *rejected*, never misread.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import MarshalError
from repro.serialization.marshal import (
    MAX_BATCH_ITEMS,
    BatchReply,
    BatchRequest,
)

payloads_st = st.lists(st.binary(max_size=512), max_size=32)
#: Arbitrary (sub_id, payload) pairs — ids need not be dense or ordered.
items_st = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**64 - 1),
              st.binary(max_size=256)),
    max_size=24).map(tuple)


class TestRequestRoundtrip:
    @given(payloads_st)
    def test_of_roundtrip(self, payloads):
        request = BatchRequest.of(payloads)
        decoded = BatchRequest.from_bytes(request.to_bytes())
        assert decoded == request
        assert len(decoded) == len(payloads)
        assert [p for _i, p in decoded.items] == [bytes(p)
                                                  for p in payloads]

    @given(items_st)
    def test_arbitrary_ids_roundtrip(self, items):
        request = BatchRequest(items)
        assert BatchRequest.from_bytes(request.to_bytes()).items == items

    def test_empty(self):
        assert BatchRequest.from_bytes(
            BatchRequest.of([]).to_bytes()).items == ()

    def test_of_assigns_positions(self):
        request = BatchRequest.of([b"a", b"b", b"c"])
        assert [i for i, _p in request.items] == [0, 1, 2]


class TestReplyRoundtrip:
    @given(items_st)
    def test_roundtrip(self, items):
        reply = BatchReply(items)
        assert BatchReply.from_bytes(reply.to_bytes()).items == items

    @given(st.lists(st.binary(max_size=128), max_size=16))
    def test_in_order_under_shuffled_ids(self, payloads):
        """Replies arriving in any id order reassemble by id, never by
        position."""
        items = list(enumerate(bytes(p) for p in payloads))
        items.reverse()  # worst-case ordering
        reply = BatchReply.from_bytes(BatchReply(tuple(items)).to_bytes())
        assert reply.in_order(len(payloads)) == [bytes(p)
                                                 for p in payloads]

    def test_in_order_rejects_missing_id(self):
        reply = BatchReply(((0, b"a"), (2, b"c")))
        with pytest.raises(MarshalError, match="missing sub id 1"):
            reply.in_order(3)

    def test_in_order_rejects_duplicate_id(self):
        reply = BatchReply(((0, b"a"), (0, b"b")))
        with pytest.raises(MarshalError, match="duplicate sub id"):
            reply.in_order(2)

    def test_in_order_rejects_short_reply(self):
        reply = BatchReply(((0, b"a"),))
        with pytest.raises(MarshalError, match="missing sub id"):
            reply.in_order(2)


class TestRejection:
    @given(payloads_st.filter(lambda p: len(p) > 0))
    @settings(max_examples=40)
    def test_truncation_always_rejected(self, payloads):
        """Every proper prefix of a record fails loudly."""
        wire = BatchRequest.of(payloads).to_bytes()
        for cut in range(0, len(wire), max(1, len(wire) // 16)):
            if cut == len(wire):
                continue
            with pytest.raises(MarshalError):
                BatchRequest.from_bytes(wire[:cut])

    @given(payloads_st, st.binary(min_size=1, max_size=16))
    @settings(max_examples=40)
    def test_trailing_garbage_rejected(self, payloads, junk):
        wire = BatchRequest.of(payloads).to_bytes() + junk
        with pytest.raises(MarshalError):
            BatchRequest.from_bytes(wire)

    def test_kind_tags_are_disjoint(self):
        """A request record can never decode as a reply or vice versa —
        the kind tag guards against handler cross-wiring."""
        request_wire = BatchRequest.of([b"x"]).to_bytes()
        reply_wire = BatchReply(((0, b"x"),)).to_bytes()
        with pytest.raises(MarshalError, match="not a BatchReply"):
            BatchReply.from_bytes(request_wire)
        with pytest.raises(MarshalError, match="not a BatchRequest"):
            BatchRequest.from_bytes(reply_wire)

    def test_insane_count_rejected(self):
        """A corrupted count field must fail fast, not allocate."""
        from repro.serialization.xdr import XdrEncoder

        enc = XdrEncoder()
        enc.pack_uint(0xB0A0)
        enc.pack_uint(MAX_BATCH_ITEMS + 1)
        with pytest.raises(MarshalError, match="claims"):
            BatchRequest.from_bytes(enc.getvalue())

    def test_empty_buffer_rejected(self):
        with pytest.raises(MarshalError):
            BatchRequest.from_bytes(b"")
