"""Tests for the little-endian CDR codec and its alignment rules."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import MarshalError
from repro.serialization.cdr import CdrDecoder, CdrEncoder


class TestWireFormat:
    def test_int_little_endian(self):
        assert CdrEncoder().pack_int(1).getvalue() == b"\x01\x00\x00\x00"

    def test_bool_single_octet(self):
        assert CdrEncoder().pack_bool(True).getvalue() == b"\x01"

    def test_natural_alignment_for_double(self):
        enc = CdrEncoder()
        enc.pack_bool(True)       # offset 1
        enc.pack_double(1.0)      # must pad to offset 8
        data = enc.getvalue()
        assert len(data) == 16
        assert data[1:8] == b"\x00" * 7

    def test_natural_alignment_for_uint(self):
        enc = CdrEncoder()
        enc.pack_bool(False)      # offset 1
        enc.pack_uint(7)          # pads to 4
        data = enc.getvalue()
        assert len(data) == 8
        assert data[4:] == b"\x07\x00\x00\x00"

    def test_hyper_aligned_to_eight(self):
        enc = CdrEncoder()
        enc.pack_uint(1)          # offset 4
        enc.pack_hyper(2)         # pads to 8
        assert len(enc.getvalue()) == 16

    def test_opaque_no_padding(self):
        # Unlike XDR, CDR octet sequences carry no trailing pad.
        assert (CdrEncoder().pack_opaque(b"abc").getvalue()
                == b"\x03\x00\x00\x00abc")


class TestDecodeAlignment:
    def test_decoder_mirrors_encoder_alignment(self):
        enc = CdrEncoder()
        enc.pack_bool(True)
        enc.pack_double(2.5)
        enc.pack_bool(False)
        enc.pack_uint(9)
        dec = CdrDecoder(enc.getvalue())
        assert dec.unpack_bool() is True
        assert dec.unpack_double() == 2.5
        assert dec.unpack_bool() is False
        assert dec.unpack_uint() == 9
        assert dec.done()

    def test_bad_bool(self):
        with pytest.raises(MarshalError):
            CdrDecoder(b"\x05").unpack_bool()


class TestRoundtrips:
    @given(st.integers(-(2 ** 31), 2 ** 31 - 1))
    def test_int(self, v):
        enc = CdrEncoder().pack_int(v)
        assert CdrDecoder(enc.getvalue()).unpack_int() == v

    @given(st.integers(0, 2 ** 64 - 1))
    def test_uhyper(self, v):
        enc = CdrEncoder().pack_uhyper(v)
        assert CdrDecoder(enc.getvalue()).unpack_uhyper() == v

    @given(st.floats(allow_nan=False))
    def test_double(self, v):
        enc = CdrEncoder().pack_double(v)
        assert CdrDecoder(enc.getvalue()).unpack_double() == v

    @given(st.text(max_size=200))
    def test_string(self, v):
        enc = CdrEncoder().pack_string(v)
        assert CdrDecoder(enc.getvalue()).unpack_string() == v

    @given(st.binary(max_size=500))
    def test_opaque(self, v):
        enc = CdrEncoder().pack_opaque(v)
        assert bytes(CdrDecoder(enc.getvalue()).unpack_opaque()) == v

    @given(st.lists(st.floats(allow_nan=False), max_size=30))
    def test_array_of_doubles(self, xs):
        enc = CdrEncoder()
        enc.pack_array(xs, enc.pack_double)
        dec = CdrDecoder(enc.getvalue())
        assert dec.unpack_array(dec.unpack_double) == xs

    @given(st.lists(
        st.one_of(
            st.tuples(st.just("i"), st.integers(-(2 ** 31), 2 ** 31 - 1)),
            st.tuples(st.just("d"), st.floats(allow_nan=False)),
            st.tuples(st.just("b"), st.booleans()),
            st.tuples(st.just("s"), st.text(max_size=20)),
        ),
        max_size=30,
    ))
    def test_mixed_stream_alignment_never_desyncs(self, items):
        """Alignment bookkeeping must agree between encoder and decoder
        for arbitrary interleavings of differently-aligned types."""
        enc = CdrEncoder()
        for kind, v in items:
            {"i": enc.pack_int, "d": enc.pack_double,
             "b": enc.pack_bool, "s": enc.pack_string}[kind](v)
        dec = CdrDecoder(enc.getvalue())
        for kind, v in items:
            out = {"i": dec.unpack_int, "d": dec.unpack_double,
                   "b": dec.unpack_bool, "s": dec.unpack_string}[kind]()
            assert out == v


class TestXdrCdrDiffer:
    def test_wire_formats_actually_differ(self):
        from repro.serialization.xdr import XdrEncoder
        x = XdrEncoder().pack_int(258).getvalue()
        c = CdrEncoder().pack_int(258).getvalue()
        assert x != c  # big- vs little-endian
