"""Differential property tests across the two codecs.

For any marshallable value, XDR and CDR must agree *semantically*: both
roundtrips return the same value, even though the wire bytes differ.
This pins the marshaller's codec abstraction: nothing type-specific may
leak into one encoding only.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.serialization.cdr import CdrDecoder, CdrEncoder
from repro.serialization.marshal import Marshaller

XDR = Marshaller()
CDR = Marshaller(CdrEncoder, CdrDecoder)

values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=30),
        st.binary(max_size=30),
        st.complex_numbers(allow_nan=False, allow_infinity=False),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=15,
)


class TestCrossCodec:
    @given(value=values)
    @settings(max_examples=150, deadline=None)
    def test_codecs_agree_semantically(self, value):
        assert XDR.loads(XDR.dumps(value)) == CDR.loads(CDR.dumps(value))

    @given(value=values)
    @settings(max_examples=60, deadline=None)
    def test_xdr_wire_is_stable(self, value):
        """Marshalling is deterministic: same value, same bytes."""
        assert XDR.dumps(value) == XDR.dumps(value)
        assert CDR.dumps(value) == CDR.dumps(value)

    @given(arr=hnp.arrays(
        dtype=st.sampled_from([np.int16, np.uint32, np.float32,
                               np.float64, np.complex128]),
        shape=hnp.array_shapes(max_dims=2, max_side=6),
        elements=st.integers(0, 100)))
    @settings(max_examples=40, deadline=None)
    def test_ndarray_cross_codec(self, arr):
        out_x = XDR.loads(XDR.dumps(arr))
        out_c = CDR.loads(CDR.dumps(arr))
        np.testing.assert_array_equal(out_x, out_c)
        np.testing.assert_array_equal(out_x, arr)

    @given(value=values)
    @settings(max_examples=40, deadline=None)
    def test_double_roundtrip_fixed_point(self, value):
        """loads∘dumps is idempotent: a second roundtrip of the decoded
        value reproduces it exactly."""
        once = XDR.loads(XDR.dumps(value))
        twice = XDR.loads(XDR.dumps(once))
        assert once == twice
