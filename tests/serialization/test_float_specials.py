"""IEEE-754 special values through the codecs and marshaller.

Scientific payloads carry infinities and NaNs routinely; the wire must
preserve them bit-faithfully (NaN compares unequal to itself, so these
cases need explicit tests outside the hypothesis roundtrips).
"""

import math

import numpy as np
import pytest

from repro.serialization.cdr import CdrDecoder, CdrEncoder
from repro.serialization.marshal import Marshaller, dumps, loads
from repro.serialization.xdr import XdrDecoder, XdrEncoder


class TestScalarSpecials:
    @pytest.mark.parametrize("value", [
        float("inf"), float("-inf"), 0.0, -0.0,
        5e-324,                     # smallest subnormal
        1.7976931348623157e308,     # largest finite
    ])
    def test_non_nan_specials(self, value):
        assert loads(dumps(value)) == value
        # -0.0 must keep its sign bit.
        if value == 0.0:
            assert math.copysign(1.0, loads(dumps(value))) == \
                math.copysign(1.0, value)

    def test_nan_roundtrip(self):
        out = loads(dumps(float("nan")))
        assert math.isnan(out)

    @pytest.mark.parametrize("enc_cls,dec_cls", [
        (XdrEncoder, XdrDecoder), (CdrEncoder, CdrDecoder)])
    def test_nan_through_both_codecs(self, enc_cls, dec_cls):
        enc = enc_cls()
        enc.pack_double(float("nan"))
        assert math.isnan(dec_cls(enc.getvalue()).unpack_double())

    def test_complex_with_specials(self):
        value = complex(float("inf"), -0.0)
        out = loads(dumps(value))
        assert out.real == float("inf")
        assert math.copysign(1.0, out.imag) == -1.0


class TestArraySpecials:
    def test_array_with_nan_and_inf(self):
        arr = np.array([1.0, float("nan"), float("inf"),
                        float("-inf"), -0.0])
        out = loads(dumps(arr))
        np.testing.assert_array_equal(np.isnan(out), np.isnan(arr))
        assert out[2] == np.inf and out[3] == -np.inf
        assert np.signbit(out[4])

    def test_nan_payload_bitfaithful(self):
        # A quiet NaN with payload bits must survive verbatim.
        raw = np.array([0x7FF8DEADBEEF0001], dtype=np.uint64)
        arr = raw.view(np.float64)
        out = loads(dumps(arr))
        assert out.view(np.uint64)[0] == raw[0]

    def test_float32_array(self):
        arr = np.array([np.float32("nan"), np.float32("inf")],
                       dtype=np.float32)
        out = loads(dumps(arr))
        assert np.isnan(out[0]) and np.isinf(out[1])


class TestRpcWithSpecials:
    def test_specials_cross_the_orb(self, ):
        from repro.core import ORB

        from tests.core.conftest import Counter

        orb = ORB()
        server = orb.context()
        client = orb.context()
        gp = client.bind(server.export(Counter()))
        arr = np.array([float("nan"), float("inf"), -0.0])
        out = gp.invoke("echo", arr)
        assert math.isnan(out[0]) and out[1] == np.inf
        assert np.signbit(out[2])
        orb.shutdown()
