"""Tests for the self-describing value marshaller."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import MarshalError, TypeCodeError
from repro.serialization.cdr import CdrDecoder, CdrEncoder
from repro.serialization.marshal import Marshaller, dumps, loads

XDR = Marshaller()
CDR = Marshaller(CdrEncoder, CdrDecoder)


def roundtrip(value, m=XDR):
    return m.loads(m.dumps(value))


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2 ** 31 - 1, -(2 ** 31),
        2 ** 40, -(2 ** 40), 2 ** 100, -(2 ** 100),
        0.0, -2.5, 1e300, float("inf"),
        1 + 2j, "", "hello", "héllo ✓", b"", b"bytes",
    ])
    def test_roundtrip_xdr(self, value):
        assert roundtrip(value) == value

    @pytest.mark.parametrize("value", [
        None, True, -7, 2 ** 50, 2 ** 100, 3.25, "x", b"y", 1 - 1j,
    ])
    def test_roundtrip_cdr(self, value):
        assert roundtrip(value, CDR) == value

    def test_bool_is_not_int(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and roundtrip(1) is not True

    def test_bytearray_becomes_bytes(self):
        assert roundtrip(bytearray(b"ab")) == b"ab"

    def test_memoryview_becomes_bytes(self):
        assert roundtrip(memoryview(b"ab")) == b"ab"

    def test_numpy_scalar_degrades(self):
        assert roundtrip(np.int64(5)) == 5
        assert roundtrip(np.float64(2.5)) == 2.5

    @given(st.integers())
    def test_any_int(self, v):
        assert roundtrip(v) == v

    @given(st.floats(allow_nan=False))
    def test_any_float(self, v):
        assert roundtrip(v) == v

    @given(st.text(max_size=200))
    def test_any_text(self, v):
        assert roundtrip(v) == v


class TestContainers:
    def test_nested(self):
        value = {"a": [1, 2, (3, "four")], "b": {"c": None},
                 "k": {1, 2, 3}}
        assert roundtrip(value) == value

    def test_empty_containers(self):
        for v in ([], (), {}, set()):
            assert roundtrip(v) == v

    def test_tuple_vs_list_preserved(self):
        assert isinstance(roundtrip((1, 2)), tuple)
        assert isinstance(roundtrip([1, 2]), list)

    def test_dict_with_tuple_keys(self):
        value = {(1, "a"): "x", (2, "b"): "y"}
        assert roundtrip(value) == value

    @given(st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(-1000, 1000),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=10), st.binary(max_size=10)),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=5), children, max_size=4)),
        max_leaves=20,
    ))
    @settings(max_examples=60)
    def test_recursive_values(self, value):
        assert roundtrip(value) == value
        assert roundtrip(value, CDR) == value

    def test_unmarshalable_type_rejected(self):
        with pytest.raises(MarshalError):
            dumps(object())

    def test_unknown_typecode_rejected(self):
        with pytest.raises(TypeCodeError):
            loads(b"\x00\x00\x00\xfa")


class TestNdarrays:
    @pytest.mark.parametrize("dtype", [
        np.int8, np.int16, np.int32, np.int64,
        np.uint8, np.uint16, np.uint32, np.uint64,
        np.float32, np.float64, np.complex64, np.complex128, np.bool_,
    ])
    def test_all_dtypes(self, dtype):
        arr = np.arange(8).astype(dtype)
        out = roundtrip(arr)
        assert out.dtype == np.dtype(dtype).newbyteorder("<") or \
            out.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(out, arr)

    def test_shape_preserved(self):
        arr = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        out = roundtrip(arr)
        assert out.shape == (2, 3, 4)
        np.testing.assert_array_equal(out, arr)

    def test_empty_array(self):
        out = roundtrip(np.empty((0, 3), dtype=np.int32))
        assert out.shape == (0, 3)

    def test_zero_dim_array(self):
        out = roundtrip(np.array(7.5))
        assert out.shape == () and out[()] == 7.5

    def test_noncontiguous_input(self):
        arr = np.arange(20, dtype=np.int32)[::2]
        np.testing.assert_array_equal(roundtrip(arr), arr)

    def test_fortran_order_input(self):
        arr = np.asfortranarray(np.arange(12, dtype=np.int64).reshape(3, 4))
        np.testing.assert_array_equal(roundtrip(arr), arr)

    def test_big_endian_input_normalized(self):
        arr = np.arange(5, dtype=">i4")
        out = roundtrip(arr)
        np.testing.assert_array_equal(out, arr)

    def test_decode_is_zero_copy(self):
        arr = np.arange(1 << 12, dtype=np.int64)
        wire = dumps(arr)
        out = loads(wire)
        # The decoded array aliases the wire buffer (read-only view).
        assert not out.flags.writeable
        assert out.base is not None

    def test_large_array_roundtrip(self):
        rng = np.random.default_rng(0)
        arr = rng.standard_normal(1 << 16)
        np.testing.assert_array_equal(roundtrip(arr), arr)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(MarshalError):
            dumps(np.zeros(3, dtype=np.float16))

    def test_corrupt_payload_length_rejected(self):
        wire = bytearray(dumps(np.arange(4, dtype=np.int32)))
        # Shrink the declared opaque length header mid-stream: decoding
        # must fail loudly, not mis-shape.
        m = Marshaller()
        with pytest.raises(MarshalError):
            # Truncate the buffer so payload is short.
            m.loads(bytes(wire[:-4]))

    @given(hnp.arrays(
        dtype=st.sampled_from([np.int32, np.float64, np.uint8]),
        shape=hnp.array_shapes(max_dims=3, max_side=8),
        elements=st.integers(0, 100),
    ))
    @settings(max_examples=40)
    def test_arrays_property(self, arr):
        out = roundtrip(arr)
        np.testing.assert_array_equal(out, arr)

    def test_array_inside_container(self):
        value = {"payload": np.arange(10, dtype=np.int32), "tag": "x"}
        out = roundtrip(value)
        np.testing.assert_array_equal(out["payload"], value["payload"])
        assert out["tag"] == "x"


class TestFixedArity:
    def test_dumps_many_loads_many(self):
        wire = XDR.dumps_many([1, "two", 3.0])
        assert XDR.loads_many(wire, 3) == [1, "two", 3.0]

    def test_cross_codec_fails_loudly(self):
        # CDR bytes fed to the XDR unmarshaller must not silently decode.
        wire = CDR.dumps("hello world and more text")
        with pytest.raises(Exception):
            XDR.loads(wire)
