"""Golden-bytes wire-compatibility pins.

These tests freeze the exact wire encoding of canonical values.  If any
of them fails, the change breaks interoperability with every previously
deployed peer — renumbering typecodes, reordering fields, or changing
padding is a protocol break, not a refactor.
"""

import numpy as np
import pytest

from repro.core.request import Invocation, encode_invocation
from repro.nexus.rsr import RsrMessage
from repro.serialization.marshal import Marshaller, dumps
from repro.transport.framing import write_frame


def hexdump(data: bytes) -> str:
    return data.hex()


class TestMarshalGoldenBytes:
    @pytest.mark.parametrize("value,expected_hex", [
        (None, "00000000"),
        (True, "0000000100000001"),
        (False, "0000000100000000"),
        (0, "0000000200000000"),
        (-1, "00000002ffffffff"),
        (2 ** 40, "000000030000010000000000"),
        (1.5, "000000053ff8000000000000"),
        ("hi", "000000060000000268690000"),
        (b"\x01\x02", "000000070000000201020000"),
        ([], "0000000800000000"),
        ((), "0000000900000000"),
        ({}, "0000000a00000000"),
    ])
    def test_scalar_pins(self, value, expected_hex):
        assert hexdump(dumps(value)) == expected_hex

    def test_list_pin(self):
        # LIST(8), count 2, then INT32 1 and INT32 2
        assert hexdump(dumps([1, 2])) == (
            "00000008" "00000002"
            "00000002" "00000001"
            "00000002" "00000002")

    def test_ndarray_pin(self):
        arr = np.array([1, 2, 3], dtype="<i4")
        # NDARRAY(11), dtype code 2 (<i4), ndim 1, dim 3, opaque 12 bytes
        assert hexdump(dumps(arr)) == (
            "0000000b"            # NDARRAY
            "00000002"            # dtype code
            "00000001"            # ndim
            "0000000000000003"    # dim[0]
            "0000000c"            # payload length
            "010000000200000003000000")

    def test_dict_pin(self):
        assert hexdump(dumps({"a": 1})) == (
            "0000000a"            # DICT
            "00000001"            # count
            "00000006" "00000001" "61000000"   # STRING "a"
            "00000002" "00000001")             # INT32 1


class TestEnvelopeGoldenBytes:
    def test_invocation_pin(self):
        m = Marshaller()
        wire = encode_invocation(
            m, Invocation("obj-1", "add", (5,), oneway=False))
        assert hexdump(wire) == (
            "00000006" "00000005" "6f626a2d31000000"  # "obj-1"
            "00000006" "00000003" "61646400"          # "add"
            "00000008" "00000001" "00000002" "00000005"  # [5]
            "00000001" "00000000")                    # oneway False

    def test_rsr_pin(self):
        wire = RsrMessage.request(7, "hpc.invoke", b"AB").encode()
        assert hexdump(wire) == (
            "00000001"                       # flags REQUEST
            "0000000000000007"               # request id
            "0000000a" "6870632e696e766f6b65" "0000"  # handler + pad
            "00000002" "41420000")           # payload + pad

    def test_frame_pin(self):
        chunks = []
        write_frame(chunks.append, b"XYZ")
        wire = b"".join(chunks)
        # 'HF' ver=1 flags=0 len=3, fletcher16 of header, payload
        assert wire[:8].hex() == "4846010000000003"
        assert wire[10:] == b"XYZ"
        from repro.util.checksums import fletcher16

        assert int.from_bytes(wire[8:10], "big") == fletcher16(wire[:8])
