"""Tests for the XDR codec, including RFC 1832 wire-format checks."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import BufferUnderflowError, MarshalError
from repro.serialization.xdr import XdrDecoder, XdrEncoder


def roundtrip(pack, unpack, value):
    enc = XdrEncoder()
    pack(enc, value)
    dec = XdrDecoder(enc.getvalue())
    out = unpack(dec)
    assert dec.done()
    return out


class TestWireFormat:
    """Exact byte-level checks against the RFC's layout."""

    def test_int_big_endian(self):
        assert XdrEncoder().pack_int(1).getvalue() == b"\x00\x00\x00\x01"

    def test_negative_int_twos_complement(self):
        assert XdrEncoder().pack_int(-1).getvalue() == b"\xff\xff\xff\xff"

    def test_uint(self):
        assert (XdrEncoder().pack_uint(0xDEADBEEF).getvalue()
                == b"\xde\xad\xbe\xef")

    def test_hyper(self):
        assert (XdrEncoder().pack_hyper(1).getvalue()
                == b"\x00" * 7 + b"\x01")

    def test_bool_is_uint(self):
        assert XdrEncoder().pack_bool(True).getvalue() == b"\x00\x00\x00\x01"
        assert XdrEncoder().pack_bool(False).getvalue() == b"\x00\x00\x00\x00"

    def test_string_length_prefix_and_pad(self):
        # "hi" -> len 2, bytes, 2 pad bytes to reach the 4-byte boundary.
        assert (XdrEncoder().pack_string("hi").getvalue()
                == b"\x00\x00\x00\x02hi\x00\x00")

    def test_opaque_multiple_of_four_no_pad(self):
        assert (XdrEncoder().pack_opaque(b"abcd").getvalue()
                == b"\x00\x00\x00\x04abcd")

    def test_fixed_opaque_pads_without_length(self):
        assert XdrEncoder().pack_fixed_opaque(b"abc").getvalue() == b"abc\x00"

    def test_double(self):
        assert (XdrEncoder().pack_double(1.0).getvalue()
                == b"\x3f\xf0\x00\x00\x00\x00\x00\x00")

    def test_everything_four_byte_aligned(self):
        enc = XdrEncoder()
        enc.pack_string("a")       # 4 + 1 + 3 pad = 8
        enc.pack_int(7)            # 12
        enc.pack_opaque(b"xyz")    # 12 + 4 + 3 + 1 pad = 20
        assert len(enc.getvalue()) % 4 == 0


class TestRangeChecks:
    def test_int_overflow(self):
        with pytest.raises(MarshalError):
            XdrEncoder().pack_int(2 ** 31)

    def test_uint_negative(self):
        with pytest.raises(MarshalError):
            XdrEncoder().pack_uint(-1)

    def test_hyper_overflow(self):
        with pytest.raises(MarshalError):
            XdrEncoder().pack_hyper(2 ** 63)

    def test_uhyper_overflow(self):
        with pytest.raises(MarshalError):
            XdrEncoder().pack_uhyper(2 ** 64)

    def test_bad_bool_on_wire(self):
        dec = XdrDecoder(b"\x00\x00\x00\x02")
        with pytest.raises(MarshalError):
            dec.unpack_bool()

    def test_truncated_input(self):
        with pytest.raises(BufferUnderflowError):
            XdrDecoder(b"\x00\x00").unpack_int()


class TestRoundtrips:
    @given(st.integers(-(2 ** 31), 2 ** 31 - 1))
    def test_int(self, v):
        assert roundtrip(XdrEncoder.pack_int, XdrDecoder.unpack_int, v) == v

    @given(st.integers(0, 2 ** 32 - 1))
    def test_uint(self, v):
        assert roundtrip(XdrEncoder.pack_uint, XdrDecoder.unpack_uint, v) == v

    @given(st.integers(-(2 ** 63), 2 ** 63 - 1))
    def test_hyper(self, v):
        assert roundtrip(XdrEncoder.pack_hyper, XdrDecoder.unpack_hyper,
                         v) == v

    @given(st.integers(0, 2 ** 64 - 1))
    def test_uhyper(self, v):
        assert roundtrip(XdrEncoder.pack_uhyper, XdrDecoder.unpack_uhyper,
                         v) == v

    @given(st.floats(allow_nan=False))
    def test_double(self, v):
        assert roundtrip(XdrEncoder.pack_double, XdrDecoder.unpack_double,
                         v) == v

    @given(st.booleans())
    def test_bool(self, v):
        assert roundtrip(XdrEncoder.pack_bool, XdrDecoder.unpack_bool, v) is v

    @given(st.binary(max_size=1000))
    def test_opaque(self, v):
        out = roundtrip(XdrEncoder.pack_opaque,
                        lambda d: bytes(d.unpack_opaque()), v)
        assert out == v

    @given(st.text(max_size=300))
    def test_string(self, v):
        assert roundtrip(XdrEncoder.pack_string, XdrDecoder.unpack_string,
                         v) == v

    @given(st.lists(st.integers(-100, 100), max_size=50))
    def test_array(self, xs):
        enc = XdrEncoder()
        enc.pack_array(xs, enc.pack_int)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_array(dec.unpack_int) == xs

    def test_heterogeneous_stream(self):
        enc = XdrEncoder()
        enc.pack_uint(3).pack_string("add").pack_double(2.5).pack_bool(True)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_uint() == 3
        assert dec.unpack_string() == "add"
        assert dec.unpack_double() == 2.5
        assert dec.unpack_bool() is True
        assert dec.done()

    def test_float_roundtrip_single_precision(self):
        enc = XdrEncoder().pack_float(0.5)
        assert XdrDecoder(enc.getvalue()).unpack_float() == 0.5
