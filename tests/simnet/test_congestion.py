"""Tests for the opt-in link-congestion model."""

import pytest

from repro.exceptions import SimulationError
from repro.simnet.presets import two_machine_lan
from repro.simnet.simulator import NetworkSimulator


def make(congestion=True, window=1.0):
    sim = NetworkSimulator(two_machine_lan(), congestion=congestion,
                           congestion_window=window)
    return sim, sim.topology.machine("A"), sim.topology.machine("B")


class TestCongestion:
    def test_disabled_by_default(self):
        sim, a, b = make(congestion=False)
        base = sim.transfer_duration(a, b, 10_000)
        for _ in range(50):
            sim.transfer(a, b, 100_000)
        assert sim.transfer_duration(a, b, 10_000) == pytest.approx(base)
        assert sim.link_utilization("ethernet-10") == 0.0

    def test_idle_link_costs_base_time(self):
        sim, a, b = make()
        no_cong = NetworkSimulator(two_machine_lan())
        assert sim.transfer_duration(a, b, 10_000) == pytest.approx(
            no_cong.transfer_duration(
                no_cong.topology.machine("A"),
                no_cong.topology.machine("B"), 10_000))

    def test_load_raises_cost(self):
        sim, a, b = make()
        first = sim.transfer(a, b, 100_000)
        # Hammer the link inside the congestion window.
        for _ in range(10):
            sim.transfer(a, b, 100_000)
        loaded = sim.transfer(a, b, 100_000)
        assert loaded > first * 1.5

    def test_utilization_bounded(self):
        sim, a, b = make()
        for _ in range(100):
            sim.transfer(a, b, 1_000_000)
        assert 0.0 <= sim.link_utilization("ethernet-10") <= 1.0

    def test_congestion_decays_when_idle(self):
        sim, a, b = make(window=0.5)
        for _ in range(10):
            sim.transfer(a, b, 100_000)
        hot = sim.link_utilization("ethernet-10")
        sim.clock.advance(10.0)  # many half-lives of idleness
        cooled = sim.link_utilization("ethernet-10")
        assert cooled < hot / 100

    def test_deterministic(self):
        def run():
            sim, a, b = make()
            for n in (100, 50_000, 100_000, 10, 100_000):
                sim.transfer(a, b, n)
            return sim.clock.now()

        assert run() == run()

    def test_delay_factor_capped(self):
        """Even a saturated link delays by at most 10x (rho cap 0.9)."""
        sim, a, b = make()
        base = sim.transfer_duration(a, b, 100_000)
        for _ in range(500):
            sim.transfer(a, b, 1_000_000)
        assert sim.transfer_duration(a, b, 100_000) <= base * 10.01

    def test_invalid_window(self):
        with pytest.raises(SimulationError):
            NetworkSimulator(two_machine_lan(), congestion_window=0)

    def test_rpc_under_congestion(self):
        """The full ORB stack works with congestion on, and repeated
        traffic gets progressively slower on the shared segment."""
        from repro.core import ORB

        from tests.core.conftest import Counter

        sim, _a, _b = make()
        orb = ORB(simulator=sim)
        server = orb.context("s", machine="B")
        client = orb.context("c", machine="A")
        gp = client.bind(server.export(Counter()))
        gp.invoke("echo", b"x" * 50_000)
        t0 = sim.clock.now()
        gp.invoke("echo", b"x" * 50_000)
        early = sim.clock.now() - t0
        for _ in range(10):
            gp.invoke("echo", b"x" * 50_000)
        t0 = sim.clock.now()
        gp.invoke("echo", b"x" * 50_000)
        late = sim.clock.now() - t0
        assert late > early
        orb.shutdown()
