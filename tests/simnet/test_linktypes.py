"""Tests for link and CPU cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.simnet.linktypes import (
    ATM_155,
    ETHERNET_10,
    LinkModel,
    SHARED_MEMORY,
    ULTRA10_CPU,
    CpuModel,
)


class TestLinkModel:
    def test_transfer_time_components(self):
        link = LinkModel("l", bandwidth_bps=8e6, latency_s=0.001,
                         per_message_s=0.002)
        # 1000 bytes at 8 Mbps = 1 ms wire + 1 ms latency + 2 ms overhead.
        assert link.transfer_time(1000) == pytest.approx(0.004)

    def test_zero_bytes_costs_latency_only(self):
        link = LinkModel("l", bandwidth_bps=1e6, latency_s=0.5)
        assert link.transfer_time(0) == pytest.approx(0.5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ETHERNET_10.transfer_time(-1)

    def test_invalid_models_rejected(self):
        with pytest.raises(ValueError):
            LinkModel("x", bandwidth_bps=0, latency_s=0)
        with pytest.raises(ValueError):
            LinkModel("x", bandwidth_bps=1, latency_s=-1)

    def test_effective_bandwidth_saturates(self):
        small = ATM_155.effective_bandwidth_mbps(100)
        large = ATM_155.effective_bandwidth_mbps(4_000_000)
        assert small < large
        # Large transfers approach (but never exceed) the payload rate.
        assert large <= 80.0
        assert large > 70.0

    @given(st.integers(0, 10 ** 8))
    def test_monotone_in_size(self, n):
        assert (ETHERNET_10.transfer_time(n + 1)
                > ETHERNET_10.transfer_time(n) - 1e-15)

    def test_shared_memory_order_of_magnitude_faster(self):
        """The Figure 5 headline: shared memory is >10x every network
        protocol at large sizes."""
        n = 4_000_000
        shm = SHARED_MEMORY.effective_bandwidth_mbps(n)
        atm = ATM_155.effective_bandwidth_mbps(n)
        eth = ETHERNET_10.effective_bandwidth_mbps(n)
        assert shm > 10 * atm
        assert shm > 10 * eth


class TestCpuModel:
    def test_costs_scale_linearly(self):
        base = ULTRA10_CPU.digest_cost(0)
        c1 = ULTRA10_CPU.digest_cost(1000) - base
        c2 = ULTRA10_CPU.digest_cost(2000) - base
        assert c2 == pytest.approx(2 * c1)

    def test_per_op_floor(self):
        assert ULTRA10_CPU.memcpy_cost(0) == ULTRA10_CPU.per_op_s

    def test_speed_factor_scales(self):
        fast = ULTRA10_CPU.scaled(2.0)
        assert fast.cipher_cost(10_000) == \
            pytest.approx(ULTRA10_CPU.cipher_cost(10_000) / 2)

    def test_bad_speed_factor(self):
        with pytest.raises(ValueError):
            ULTRA10_CPU.scaled(0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ULTRA10_CPU.memcpy_cost(-5)

    def test_crypto_slower_than_memcpy(self):
        n = 1_000_000
        assert ULTRA10_CPU.cipher_cost(n) > ULTRA10_CPU.memcpy_cost(n)
        assert ULTRA10_CPU.block_cipher_cost(n) > ULTRA10_CPU.cipher_cost(n)

    def test_capability_overhead_below_network_time(self):
        """The paper's §5 inference must hold in the model: for messages
        going over the network, wire time dominates capability CPU."""
        for n in (1_000, 100_000, 4_000_000):
            wire = ETHERNET_10.transfer_time(n)
            cap_cpu = (ULTRA10_CPU.cipher_cost(n)
                       + ULTRA10_CPU.digest_cost(n))
            assert cap_cpu < wire
