"""Differential test: our BFS routing vs networkx shortest paths.

Random LAN graphs are generated; for every machine pair, the number of
inter-LAN hops our router takes must equal the networkx shortest-path
length (both sides measure unweighted hops).  networkx is a test-only
dependency — the runtime router stays dependency-free.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import TopologyError
from repro.simnet.linktypes import ETHERNET_10
from repro.simnet.topology import Topology


def build_world(n_lans: int, edges: list):
    """Topology with one machine per LAN plus the matching nx graph."""
    topo = Topology()
    site = topo.add_site("site")
    lans = [topo.add_lan(f"lan{i}", site, ETHERNET_10)
            for i in range(n_lans)]
    graph = nx.Graph()
    graph.add_nodes_from(range(n_lans))
    for a, b in edges:
        if a != b and not graph.has_edge(a, b):
            topo.connect(lans[a], lans[b], ETHERNET_10)
            graph.add_edge(a, b)
    machines = [topo.add_machine(f"m{i}", lans[i])
                for i in range(n_lans)]
    return topo, graph, machines


@st.composite
def lan_graphs(draw):
    n = draw(st.integers(2, 7))
    max_edges = n * (n - 1) // 2
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_edges * 2))
    return n, edges


class TestRoutingDifferential:
    @given(world=lan_graphs())
    @settings(max_examples=60, deadline=None)
    def test_hop_count_matches_networkx(self, world):
        n, edges = world
        topo, graph, machines = build_world(n, edges)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                try:
                    nx_hops = nx.shortest_path_length(graph, i, j)
                    reachable = True
                except nx.NetworkXNoPath:
                    reachable = False
                if not reachable:
                    with pytest.raises(TopologyError):
                        topo.route(machines[i], machines[j])
                    continue
                route = topo.route(machines[i], machines[j])
                # Our route = src segment + inter-LAN links + dst
                # segment, so inter-LAN hops = len(route) - 2.
                assert len(route) - 2 == nx_hops

    @given(world=lan_graphs())
    @settings(max_examples=30, deadline=None)
    def test_route_cost_symmetric(self, world):
        n, edges = world
        topo, graph, machines = build_world(n, edges)
        for i in range(n):
            for j in range(i + 1, n):
                if not nx.has_path(graph, i, j):
                    continue
                fwd = topo.route(machines[i], machines[j])
                rev = topo.route(machines[j], machines[i])
                assert len(fwd) == len(rev)
                assert sum(l.transfer_time(1000) for l in fwd) == \
                    pytest.approx(sum(l.transfer_time(1000) for l in rev))
