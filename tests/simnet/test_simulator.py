"""Tests for the virtual clock and the network simulator."""

import pytest

from repro.exceptions import SimulationError
from repro.simnet.clock import VirtualClock
from repro.simnet.linktypes import ETHERNET_10, ULTRA10_CPU
from repro.simnet.presets import paper_testbed, two_machine_lan
from repro.simnet.simulator import NetworkSimulator


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now() == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance(-0.1)

    def test_advance_to_never_goes_back(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        clock.advance_to(1.0)
        assert clock.now() == 2.0


@pytest.fixture
def sim():
    return NetworkSimulator(two_machine_lan())


class TestSynchronousTransfer:
    def test_transfer_advances_clock(self, sim):
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        duration = sim.transfer(a, b, 10_000)
        assert duration == pytest.approx(
            ETHERNET_10.transfer_time(10_000))
        assert sim.clock.now() == pytest.approx(duration)

    def test_transfer_duration_is_pure(self, sim):
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        d = sim.transfer_duration(a, b, 500)
        assert sim.clock.now() == 0.0
        assert d > 0

    def test_loopback_transfer_fast(self, sim):
        a = sim.topology.machine("A")
        same = sim.transfer_duration(a, a, 1_000_000)
        b = sim.topology.machine("B")
        lan = sim.transfer_duration(a, b, 1_000_000)
        assert same < lan / 10

    def test_log_records(self, sim):
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        sim.transfer(a, b, 100)
        sim.transfer(b, a, 200)
        assert sim.log.total_messages == 2
        assert sim.log.total_bytes == 300
        assert sim.log.records[0].src == "A"
        assert sim.log.per_link["ethernet-10"].messages == 2

    def test_record_bandwidth(self, sim):
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        sim.transfer(a, b, 1_000_000)
        rec = sim.log.records[0]
        assert 0 < rec.bandwidth_mbps < 10.0  # can't beat the wire

    def test_charge_cpu(self, sim):
        a = sim.topology.machine("A")
        cost = a.cpu.digest_cost(1_000)
        sim.charge_cpu(a, cost)
        assert sim.clock.now() == pytest.approx(cost)
        assert sim.cpu_seconds == pytest.approx(cost)

    def test_negative_cpu_charge_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.charge_cpu(sim.topology.machine("A"), -1.0)

    def test_multihop_charges_each_link(self):
        tb = paper_testbed()
        sim = NetworkSimulator(tb.topology)
        direct = sim.transfer_duration(tb.m0, tb.m3, 1000)   # same LAN
        remote = sim.transfer_duration(tb.m0, tb.m1, 1000)   # 3 links
        assert remote > 2.5 * direct


class TestEventQueue:
    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.clock.now()))
        sim.schedule(0.5, lambda: fired.append(sim.clock.now()))
        n = sim.run()
        assert n == 2
        assert fired == [0.5, 1.0]

    def test_schedule_in_past_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.clock.now() == 2.0
        assert sim.pending_events == 1

    def test_run_until_advances_time_when_idle(self, sim):
        sim.run(until=5.0)
        assert sim.clock.now() == 5.0

    def test_event_ordering_stable_for_ties(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_events_can_schedule_events(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.clock.now() == pytest.approx(2.0)

    def test_max_events_guard(self, sim):
        def rearm():
            sim.schedule(0.001, rearm)

        sim.schedule(0.001, rearm)
        n = sim.run(max_events=50)
        assert n == 50

    def test_post_message_delivers_later(self, sim):
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        got = []
        sim.post_message(a, b, 1000, got.append)
        assert got == []  # not delivered synchronously
        sim.run()
        assert len(got) == 1
        assert got[0].nbytes == 1000
        assert sim.clock.now() == pytest.approx(got[0].duration)

    def test_concurrent_messages_interleave(self, sim):
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        order = []
        sim.post_message(a, b, 1_000_000, lambda r: order.append("big"))
        sim.post_message(a, b, 10, lambda r: order.append("small"))
        sim.run()
        # The small message finishes first despite being posted second.
        assert order == ["small", "big"]
