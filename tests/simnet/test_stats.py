"""Tests for transfer statistics and simulator determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.linktypes import ETHERNET_10
from repro.simnet.presets import paper_testbed, two_machine_lan
from repro.simnet.simulator import NetworkSimulator
from repro.simnet.stats import LinkStats, TransferLog, TransferRecord


def record(nbytes=100, duration=0.5):
    return TransferRecord(src="A", dst="B", nbytes=nbytes,
                          start_time=1.0, duration=duration,
                          links=(ETHERNET_10,))


class TestTransferRecord:
    def test_end_time(self):
        assert record(duration=0.5).end_time == 1.5

    def test_bandwidth(self):
        r = record(nbytes=125_000, duration=1.0)  # 1 Mbit in 1 s
        assert r.bandwidth_mbps == pytest.approx(1.0)

    def test_zero_duration(self):
        assert record(duration=0.0).bandwidth_mbps == float("inf")


class TestTransferLog:
    def test_aggregates(self):
        log = TransferLog()
        log.add(record(nbytes=100))
        log.add(record(nbytes=200))
        assert log.total_messages == 2
        assert log.total_bytes == 300
        assert log.durations.count == 2
        assert log.per_link["ethernet-10"].messages == 2
        assert log.per_link["ethernet-10"].bytes == 300

    def test_bounded_records(self):
        log = TransferLog(keep_records=3)
        for _ in range(10):
            log.add(record())
        assert len(log.records) == 3
        assert log.total_messages == 10  # aggregates keep counting

    def test_disabled_records(self):
        log = TransferLog(keep_records=0)
        log.add(record())
        assert log.records == []
        assert log.total_messages == 1

    def test_clear(self):
        log = TransferLog()
        log.add(record())
        log.clear()
        assert log.total_messages == 0 and not log.per_link

    def test_multi_link_attribution(self):
        tb = paper_testbed()
        sim = NetworkSimulator(tb.topology)
        sim.transfer(tb.m0, tb.m1, 1000)   # 3 links on the route
        assert len(sim.log.records[0].links) == 3
        assert sim.log.per_link  # every link got credited
        total_msgs = sum(s.messages for s in sim.log.per_link.values())
        assert total_msgs == 3


class TestLinkStats:
    def test_record(self):
        stats = LinkStats("l")
        stats.record(10, 0.1)
        stats.record(20, 0.2)
        assert stats.messages == 2
        assert stats.bytes == 30
        assert stats.busy_seconds == pytest.approx(0.3)


class TestDeterminism:
    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_transfer_sequence_deterministic(self, sizes):
        def run():
            sim = NetworkSimulator(two_machine_lan())
            a = sim.topology.machine("A")
            b = sim.topology.machine("B")
            for n in sizes:
                sim.transfer(a, b, n)
            return sim.clock.now()

        assert run() == run()

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_transfer_additive(self, sizes):
        """Synchronous transfers accumulate: total time equals the sum
        of individual durations."""
        sim = NetworkSimulator(two_machine_lan())
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        expected = sum(sim.transfer_duration(a, b, n) for n in sizes)
        for n in sizes:
            sim.transfer(a, b, n)
        assert sim.clock.now() == pytest.approx(expected)

    def test_route_symmetry(self):
        tb = paper_testbed()
        sim = NetworkSimulator(tb.topology)
        for src in tb.machines:
            for dst in tb.machines:
                assert sim.transfer_duration(src, dst, 5000) == \
                    pytest.approx(sim.transfer_duration(dst, src, 5000))
