"""Tests for the simulated topology and routing."""

import pytest

from repro.exceptions import TopologyError
from repro.simnet.linktypes import ATM_155, ETHERNET_10, WAN_T3
from repro.simnet.presets import paper_testbed, two_machine_lan
from repro.simnet.topology import Topology


@pytest.fixture
def campus():
    """Two-site topology: site X (lan1: A, B; lan2: C), site Y (lan3: D)."""
    topo = Topology()
    x = topo.add_site("X")
    y = topo.add_site("Y")
    lan1 = topo.add_lan("lan1", x, ETHERNET_10)
    lan2 = topo.add_lan("lan2", x, ETHERNET_10)
    lan3 = topo.add_lan("lan3", y, ETHERNET_10)
    topo.connect(lan1, lan2, ATM_155)
    topo.connect(lan2, lan3, WAN_T3)
    topo.add_machine("A", lan1)
    topo.add_machine("B", lan1)
    topo.add_machine("C", lan2)
    topo.add_machine("D", lan3)
    return topo


class TestConstruction:
    def test_duplicate_site_rejected(self, campus):
        with pytest.raises(TopologyError):
            campus.add_site("X")

    def test_duplicate_lan_rejected(self, campus):
        with pytest.raises(TopologyError):
            campus.add_lan("lan1", campus.sites["X"], ETHERNET_10)

    def test_duplicate_machine_rejected(self, campus):
        with pytest.raises(TopologyError):
            campus.add_machine("A", campus.lans["lan1"])

    def test_self_connect_rejected(self, campus):
        lan = campus.lans["lan1"]
        with pytest.raises(TopologyError):
            campus.connect(lan, lan, ATM_155)

    def test_unknown_machine_lookup(self, campus):
        with pytest.raises(TopologyError):
            campus.machine("nope")


class TestLocality:
    def test_same_machine(self, campus):
        a = campus.machine("A")
        assert a.locality_to(a) == "same-machine"

    def test_same_lan(self, campus):
        assert campus.locality("A", "B") == "same-lan"

    def test_same_site(self, campus):
        assert campus.locality("A", "C") == "same-site"

    def test_remote(self, campus):
        assert campus.locality("A", "D") == "remote"

    def test_symmetry(self, campus):
        for pair in (("A", "B"), ("A", "C"), ("A", "D")):
            assert campus.locality(*pair) == campus.locality(*pair[::-1])


class TestRouting:
    def test_loopback_route(self, campus):
        a = campus.machine("A")
        route = campus.route(a, a)
        assert len(route) == 1
        assert route[0].name == "shared-memory"

    def test_same_lan_route(self, campus):
        route = campus.route(campus.machine("A"), campus.machine("B"))
        assert [l.name for l in route] == ["ethernet-10"]

    def test_one_hop_route(self, campus):
        route = campus.route(campus.machine("A"), campus.machine("C"))
        # src LAN segment + inter-LAN link + dst LAN segment
        assert [l.name for l in route] == \
            ["ethernet-10", "atm-155", "ethernet-10"]

    def test_two_hop_route(self, campus):
        route = campus.route(campus.machine("A"), campus.machine("D"))
        assert [l.name for l in route] == \
            ["ethernet-10", "atm-155", "wan-t3", "ethernet-10"]

    def test_no_route_raises(self):
        topo = Topology()
        s = topo.add_site("s")
        lan_a = topo.add_lan("a", s, ETHERNET_10)
        lan_b = topo.add_lan("b", s, ETHERNET_10)  # never connected
        topo.add_machine("A", lan_a)
        topo.add_machine("B", lan_b)
        with pytest.raises(TopologyError):
            topo.route(topo.machine("A"), topo.machine("B"))

    def test_shortest_path_chosen(self):
        # Triangle: direct lan1-lan3 link must beat lan1-lan2-lan3.
        topo = Topology()
        s = topo.add_site("s")
        l1 = topo.add_lan("l1", s, ETHERNET_10)
        l2 = topo.add_lan("l2", s, ETHERNET_10)
        l3 = topo.add_lan("l3", s, ETHERNET_10)
        topo.connect(l1, l2, ATM_155)
        topo.connect(l2, l3, ATM_155)
        topo.connect(l1, l3, WAN_T3)
        topo.add_machine("A", l1)
        topo.add_machine("B", l3)
        route = topo.route(topo.machine("A"), topo.machine("B"))
        assert [l.name for l in route] == \
            ["ethernet-10", "wan-t3", "ethernet-10"]


class TestPresets:
    def test_two_machine_lan(self):
        topo = two_machine_lan()
        assert topo.locality("A", "B") == "same-lan"

    def test_paper_testbed_localities(self):
        tb = paper_testbed()
        # The Figure 4 applicability structure:
        assert tb.m0.locality_to(tb.m1) == "remote"       # S1: security+timeout
        assert tb.m0.locality_to(tb.m2) == "same-site"    # S2: timeout only
        assert tb.m0.locality_to(tb.m3) == "same-lan"     # S3: Nexus TCP
        assert tb.m0.locality_to(tb.m0) == "same-machine"  # S4: shared memory

    def test_paper_testbed_fully_routable(self):
        tb = paper_testbed()
        for src in tb.machines:
            for dst in tb.machines:
                assert tb.topology.route(src, dst)

    def test_fabric_selection(self):
        from repro.simnet.linktypes import ETHERNET_10 as eth
        tb = paper_testbed(fabric=eth)
        route = tb.topology.route(tb.m0, tb.m1)
        assert all(l.name == "ethernet-10" for l in route)
