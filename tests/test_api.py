"""Public API surface checks.

The README documents ``from repro import ...`` names; this test pins that
surface so refactors cannot silently break downstream users.
"""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", [
        "ORB", "Context", "GlobalPointer", "ObjectReference",
        "ProtocolPool", "migrate", "LoadBalancer",
        "remote_interface", "remote_method", "InterfaceView",
        "CallQuotaCapability", "EncryptionCapability",
        "AuthenticationCapability", "TimeLeaseCapability",
        "QuotaExceededError", "RemoteException",
    ])
    def test_documented_names_exported(self, name):
        assert name in repro.__all__

    def test_subpackages_importable(self):
        for module in [
            "repro.core", "repro.core.capabilities", "repro.idl",
            "repro.serialization", "repro.nexus", "repro.transport",
            "repro.simnet", "repro.security", "repro.compression",
            "repro.cluster", "repro.bench", "repro.util",
        ]:
            assert importlib.import_module(module) is not None

    def test_exceptions_rooted(self):
        from repro.exceptions import HpcError

        for name in ("CapabilityError", "QuotaExceededError",
                     "RemoteException", "NoApplicableProtocolError",
                     "AuthenticationError", "LeaseExpiredError"):
            assert issubclass(getattr(repro, name), HpcError)

    def test_readme_quickstart_runs(self):
        """The README's quick-tour snippet must keep working verbatim."""
        from repro import ORB, remote_interface, remote_method

        @remote_interface("Echo")
        class Echo:
            @remote_method
            def echo(self, x):
                return x

        orb = ORB()
        server = orb.context()
        client = orb.context()
        gp = client.bind(server.export(Echo()))
        assert gp.narrow().echo(42) == 42
        orb.shutdown()


class TestDocstrings:
    def test_every_public_module_documented(self):
        import pkgutil

        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__,
                                          prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(info.name)
        assert undocumented == []

    def test_public_classes_documented(self):
        missing = [name for name in repro.__all__
                   if isinstance(getattr(repro, name, None), type)
                   and not (getattr(repro, name).__doc__ or "").strip()]
        assert missing == []
