"""Every example script must run cleanly: examples are executable docs.

Each script is executed in a subprocess (so its ``__main__`` path, its
imports, and its ORB lifecycle are all exercised exactly as a user would
run them) and its output spot-checked for the claims it narrates.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\n"
        f"stderr:\n{result.stderr}")
    return result.stdout


def test_examples_directory_complete():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "glue[quota+integrity]" in out
    assert "quota enforced" in out


def test_weather_service():
    out = run_example("weather_service.py")
    assert "analyst protocol      : nexus" in out
    assert "glue[auth+encryption]" in out
    assert "cut off after 5 calls" in out
    assert "lease expired" in out


def test_migration_adaptive():
    out = run_example("migration_adaptive.py")
    assert "glue[quota+encryption]" in out
    assert "shm" in out
    assert "state followed the object" in out


def test_capability_delegation():
    out = run_example("capability_delegation.py")
    assert "fifth call refused" in out
    assert "after negotiation : glue[tracing]" in out


def test_load_balancing():
    out = run_example("load_balancing.py")
    assert "migrations" in out
    assert "glue[auth] -> nexus" in out


def test_custom_protocol():
    out = run_example("custom_protocol.py")
    assert "selected       : logged" in out
    assert "first-match picks: glue[encryption]" in out
    assert "cost-aware picks : nexus" in out


def test_task_farm():
    out = run_example("task_farm.py")
    assert "pi ~= 3.1415926536" in out
    assert "balancer: moved" in out
    assert "post-migration sanity" in out
