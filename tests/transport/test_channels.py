"""Behavioural tests shared by the real (wall-clock) transports.

The in-process, shared-memory, and TCP transports must be
interchangeable: one parameterized suite drives all three through the
same scenarios.
"""

import threading

import pytest

from repro.exceptions import ChannelClosedError, TransportError
from repro.transport.inproc import InProcTransport
from repro.transport.shm import ShmTransport
from repro.transport.tcp import TcpTransport


@pytest.fixture(params=["inproc", "shm", "tcp"])
def transport(request):
    return {
        "inproc": InProcTransport,
        "shm": ShmTransport,
        "tcp": TcpTransport,
    }[request.param]()


@pytest.fixture
def pair(transport):
    """(client, server) connected channel pair; cleaned up afterwards."""
    listener = transport.listen()
    client = transport.connect(listener.address)
    server = listener.accept(timeout=5.0)
    yield client, server
    client.close()
    server.close()
    listener.close()


class TestBasicExchange:
    def test_client_to_server(self, pair):
        client, server = pair
        client.send(b"ping")
        assert server.recv(timeout=5.0) == b"ping"

    def test_server_to_client(self, pair):
        client, server = pair
        server.send(b"pong")
        assert client.recv(timeout=5.0) == b"pong"

    def test_request_reply(self, pair):
        client, server = pair
        client.send(b"2+2")
        assert server.recv(timeout=5.0) == b"2+2"
        server.send(b"4")
        assert client.recv(timeout=5.0) == b"4"

    def test_message_boundaries_preserved(self, pair):
        client, server = pair
        client.send(b"one")
        client.send(b"two")
        client.send(b"three")
        assert server.recv(timeout=5.0) == b"one"
        assert server.recv(timeout=5.0) == b"two"
        assert server.recv(timeout=5.0) == b"three"

    def test_empty_message(self, pair):
        client, server = pair
        client.send(b"")
        assert server.recv(timeout=5.0) == b""

    def test_large_message(self, pair):
        client, server = pair
        big = bytes(range(256)) * 4096  # 1 MiB, larger than shm ring

        def pump():
            client.send(big)

        t = threading.Thread(target=pump)
        t.start()
        assert server.recv(timeout=10.0) == big
        t.join(timeout=10.0)

    def test_bytearray_and_memoryview_accepted(self, pair):
        client, server = pair
        client.send(bytearray(b"ba"))
        client.send(memoryview(b"mv"))
        assert server.recv(timeout=5.0) == b"ba"
        assert server.recv(timeout=5.0) == b"mv"


class TestLifecycle:
    def test_send_after_close_raises(self, pair):
        client, _server = pair
        client.close()
        with pytest.raises(ChannelClosedError):
            client.send(b"x")

    def test_recv_timeout(self, pair):
        client, _server = pair
        with pytest.raises(TransportError):
            client.recv(timeout=0.05)

    def test_peer_close_detected(self, pair):
        client, server = pair
        server.close()
        with pytest.raises(ChannelClosedError):
            client.recv(timeout=5.0)

    def test_close_idempotent(self, pair):
        client, _ = pair
        client.close()
        client.close()
        assert client.closed

    def test_connect_to_closed_listener_fails(self, transport):
        listener = transport.listen()
        address = listener.address
        listener.close()
        with pytest.raises(TransportError):
            transport.connect(address)

    def test_connect_to_unknown_address_fails(self, transport):
        bad = dict(transport.listen().address)
        if "port" in bad:
            pytest.skip("tcp: picking a guaranteed-dead port is racy")
        bad["key"] = "no-such-key"
        with pytest.raises(TransportError):
            transport.connect(bad)


class TestConcurrency:
    def test_multiple_clients(self, transport):
        listener = transport.listen()
        clients = [transport.connect(listener.address) for _ in range(4)]
        servers = [listener.accept(timeout=5.0) for _ in range(4)]
        for i, c in enumerate(clients):
            c.send(f"hello-{i}".encode())
        got = sorted(s.recv(timeout=5.0) for s in servers)
        assert got == sorted(f"hello-{i}".encode() for i in range(4))
        for ch in clients + servers:
            ch.close()
        listener.close()

    def test_bidirectional_threads(self, pair):
        client, server = pair
        n = 50
        received = []

        def echo():
            for _ in range(n):
                received.append(server.recv(timeout=5.0))
                server.send(received[-1])

        t = threading.Thread(target=echo)
        t.start()
        for i in range(n):
            msg = f"m{i}".encode()
            client.send(msg)
            assert client.recv(timeout=5.0) == msg
        t.join(timeout=5.0)
        assert len(received) == n


class TestAddressing:
    def test_listener_address_is_marshallable(self, transport):
        from repro.serialization.marshal import dumps, loads

        listener = transport.listen()
        address = listener.address
        assert loads(dumps(address)) == address
        listener.close()

    def test_explicit_key_or_port(self, transport):
        if transport.name == "tcp":
            listener = transport.listen({"port": 0})
            assert listener.address["port"] > 0
        else:
            listener = transport.listen({"key": "my-endpoint"})
            assert listener.address["key"] == "my-endpoint"
            with pytest.raises(TransportError):
                transport.listen({"key": "my-endpoint"})
        listener.close()
