"""Tests for the length-prefixed frame codec."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import FramingError
from repro.transport.framing import HEADER, MAX_FRAME, read_frame, write_frame


def frame_bytes(payload) -> bytes:
    sink = io.BytesIO()
    write_frame(sink.write, payload)
    return sink.getvalue()


def reader_over(data: bytes):
    stream = io.BytesIO(data)

    def read_exact(n):
        out = stream.read(n)
        assert len(out) == n, "test stream truncated"
        return out

    return read_exact


class TestRoundtrip:
    def test_simple(self):
        wire = frame_bytes(b"hello")
        assert read_frame(reader_over(wire)) == b"hello"

    def test_empty_payload(self):
        wire = frame_bytes(b"")
        assert read_frame(reader_over(wire)) == b""

    def test_chunked_payload(self):
        wire = frame_bytes([b"a", b"bc", b"def"])
        assert read_frame(reader_over(wire)) == b"abcdef"

    def test_back_to_back_frames(self):
        wire = frame_bytes(b"one") + frame_bytes(b"two")
        read_exact = reader_over(wire)
        assert read_frame(read_exact) == b"one"
        assert read_frame(read_exact) == b"two"

    def test_returns_total_length(self):
        sink = io.BytesIO()
        n = write_frame(sink.write, b"abc")
        assert n == len(sink.getvalue())

    @given(st.binary(max_size=5000))
    def test_roundtrip_property(self, payload):
        assert read_frame(reader_over(frame_bytes(payload))) == payload


class TestCorruption:
    def test_bad_magic_detected(self):
        wire = bytearray(frame_bytes(b"payload"))
        wire[0] = ord(b"X")
        with pytest.raises(FramingError):
            read_frame(reader_over(bytes(wire)))

    def test_corrupt_length_detected_by_checksum(self):
        wire = bytearray(frame_bytes(b"payload"))
        wire[4] ^= 0xFF  # clobber the high length byte
        with pytest.raises(FramingError):
            read_frame(reader_over(bytes(wire)))

    def test_bad_version_detected(self):
        # Rebuild a frame with a wrong version but a *valid* checksum, to
        # prove the version check itself fires.
        from repro.util.checksums import fletcher16

        header = HEADER.pack(b"HF", 99, 0, 3)
        wire = header + fletcher16(header).to_bytes(2, "big") + b"abc"
        with pytest.raises(FramingError):
            read_frame(reader_over(wire))

    def test_oversized_frame_rejected_on_write(self):
        class FakeBig:
            def __len__(self):
                return MAX_FRAME + 1

        with pytest.raises(FramingError):
            write_frame(lambda b: None, [FakeBig()])

    def test_oversized_frame_rejected_on_read(self):
        from repro.util.checksums import fletcher16

        header = HEADER.pack(b"HF", 1, 0, MAX_FRAME + 1)
        wire = header + fletcher16(header).to_bytes(2, "big")
        with pytest.raises(FramingError):
            read_frame(reader_over(wire))
