"""Tests for the length-prefixed frame codec."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import FramingError
from repro.transport.framing import (
    FLAG_BATCH,
    HEADER,
    MAX_FRAME,
    buffer_read_exact,
    read_frame,
    read_frame_ex,
    write_frame,
)


def frame_bytes(payload) -> bytes:
    sink = io.BytesIO()
    write_frame(sink.write, payload)
    return sink.getvalue()


def reader_over(data: bytes):
    stream = io.BytesIO(data)

    def read_exact(n):
        out = stream.read(n)
        assert len(out) == n, "test stream truncated"
        return out

    return read_exact


class TestRoundtrip:
    def test_simple(self):
        wire = frame_bytes(b"hello")
        assert read_frame(reader_over(wire)) == b"hello"

    def test_empty_payload(self):
        wire = frame_bytes(b"")
        assert read_frame(reader_over(wire)) == b""

    def test_chunked_payload(self):
        wire = frame_bytes([b"a", b"bc", b"def"])
        assert read_frame(reader_over(wire)) == b"abcdef"

    def test_back_to_back_frames(self):
        wire = frame_bytes(b"one") + frame_bytes(b"two")
        read_exact = reader_over(wire)
        assert read_frame(read_exact) == b"one"
        assert read_frame(read_exact) == b"two"

    def test_returns_total_length(self):
        sink = io.BytesIO()
        n = write_frame(sink.write, b"abc")
        assert n == len(sink.getvalue())

    @given(st.binary(max_size=5000))
    def test_roundtrip_property(self, payload):
        assert read_frame(reader_over(frame_bytes(payload))) == payload


class TestCorruption:
    def test_bad_magic_detected(self):
        wire = bytearray(frame_bytes(b"payload"))
        wire[0] = ord(b"X")
        with pytest.raises(FramingError):
            read_frame(reader_over(bytes(wire)))

    def test_corrupt_length_detected_by_checksum(self):
        wire = bytearray(frame_bytes(b"payload"))
        wire[4] ^= 0xFF  # clobber the high length byte
        with pytest.raises(FramingError):
            read_frame(reader_over(bytes(wire)))

    def test_bad_version_detected(self):
        # Rebuild a frame with a wrong version but a *valid* checksum, to
        # prove the version check itself fires.
        from repro.util.checksums import fletcher16

        header = HEADER.pack(b"HF", 99, 0, 3)
        wire = header + fletcher16(header).to_bytes(2, "big") + b"abc"
        with pytest.raises(FramingError):
            read_frame(reader_over(wire))

    def test_oversized_frame_rejected_on_write(self):
        class FakeBig:
            def __len__(self):
                return MAX_FRAME + 1

        with pytest.raises(FramingError):
            write_frame(lambda b: None, [FakeBig()])

    def test_oversized_frame_rejected_on_read(self):
        from repro.util.checksums import fletcher16

        header = HEADER.pack(b"HF", 1, 0, MAX_FRAME + 1)
        wire = header + fletcher16(header).to_bytes(2, "big")
        with pytest.raises(FramingError):
            read_frame(reader_over(wire))


class TestFlags:
    """The frame-flag byte: batch routing without touching payloads."""

    def frame_with_flags(self, payload, flags):
        sink = io.BytesIO()
        write_frame(sink.write, payload, flags=flags)
        return sink.getvalue()

    def test_default_flags_zero(self):
        flags, payload = read_frame_ex(reader_over(frame_bytes(b"x")))
        assert flags == 0
        assert payload == b"x"

    def test_batch_flag_roundtrip(self):
        wire = self.frame_with_flags(b"record", FLAG_BATCH)
        flags, payload = read_frame_ex(reader_over(wire))
        assert flags & FLAG_BATCH
        assert payload == b"record"

    @given(st.integers(min_value=0, max_value=0xFF),
           st.binary(max_size=500))
    def test_any_byte_roundtrips(self, flags, payload):
        wire = self.frame_with_flags(payload, flags)
        assert read_frame_ex(reader_over(wire)) == (flags, payload)

    @given(st.integers().filter(lambda f: not 0 <= f <= 0xFF))
    def test_out_of_range_flags_rejected(self, flags):
        with pytest.raises(FramingError):
            write_frame(lambda b: None, b"x", flags=flags)

    def test_legacy_reader_drops_flags(self):
        """read_frame still works on flagged frames (the flag byte was
        always in the header; old callers just ignored it)."""
        wire = self.frame_with_flags(b"record", FLAG_BATCH)
        assert read_frame(reader_over(wire)) == b"record"

    def test_flags_covered_by_checksum(self):
        wire = bytearray(self.frame_with_flags(b"record", FLAG_BATCH))
        wire[3] ^= 0x02  # flip a different flag bit in place
        with pytest.raises(FramingError):
            read_frame_ex(reader_over(bytes(wire)))


class TestBufferReadExact:
    """The strict in-memory reader the batch layer decodes with."""

    def test_reads_a_whole_frame(self):
        wire = frame_bytes(b"hello")
        assert read_frame(buffer_read_exact(wire)) == b"hello"

    def test_sequential_frames(self):
        read_exact = buffer_read_exact(frame_bytes(b"a") + frame_bytes(b"b"))
        assert read_frame(read_exact) == b"a"
        assert read_frame(read_exact) == b"b"

    @given(st.binary(max_size=2000))
    def test_truncated_frames_always_rejected(self, payload):
        """Every strict prefix of a frame raises FramingError — a
        cut-off batch frame can never be silently misread."""
        wire = frame_bytes(payload)
        step = max(1, len(wire) // 24)
        for cut in range(0, len(wire), step):
            if cut == len(wire):
                continue
            with pytest.raises(FramingError):
                read_frame(buffer_read_exact(wire[:cut]))

    def test_error_names_offset(self):
        with pytest.raises(FramingError, match="offset"):
            read_frame(buffer_read_exact(frame_bytes(b"payload")[:5]))
