"""Focused tests for the SPSC byte ring underlying the shm transport."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ChannelClosedError, TransportError
from repro.transport.shm import ShmRing


class TestBasics:
    def test_write_then_read(self):
        ring = ShmRing(64)
        ring.write(b"hello")
        assert ring.read(5) == b"hello"
        assert ring.size == 0

    def test_partial_reads(self):
        ring = ShmRing(64)
        ring.write(b"abcdef")
        assert ring.read(2) == b"ab"
        assert ring.read(4) == b"cdef"

    def test_interleaved(self):
        ring = ShmRing(64)
        ring.write(b"abc")
        assert ring.read(1) == b"a"
        ring.write(b"def")
        assert ring.read(5) == b"bcdef"

    def test_wraparound(self):
        ring = ShmRing(8)
        ring.write(b"abcdef")
        assert ring.read(6) == b"abcdef"
        # Head is now at offset 6 of 8: this write wraps.
        ring.write(b"123456")
        assert ring.read(6) == b"123456"

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            ShmRing(4)

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            ShmRing(16).read(-1)

    def test_zero_read(self):
        assert ShmRing(16).read(0) == b""


class TestBlocking:
    def test_write_larger_than_capacity_streams(self):
        ring = ShmRing(16)
        data = bytes(range(256))
        out = []

        def consumer():
            out.append(ring.read(256, timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        ring.write(data, timeout=5.0)
        t.join(timeout=5.0)
        assert out == [data]

    def test_read_blocks_until_write(self):
        ring = ShmRing(16)
        out = []

        def consumer():
            out.append(ring.read(3, timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        ring.write(b"xyz")
        t.join(timeout=5.0)
        assert out == [b"xyz"]

    def test_write_timeout_when_full(self):
        ring = ShmRing(8)
        ring.write(b"12345678")
        with pytest.raises(TransportError):
            ring.write(b"x", timeout=0.05)

    def test_read_timeout_when_empty(self):
        with pytest.raises(TransportError):
            ShmRing(8).read(1, timeout=0.05)

    def test_close_releases_blocked_reader(self):
        ring = ShmRing(8)
        errors = []

        def consumer():
            try:
                ring.read(1, timeout=5.0)
            except ChannelClosedError:
                errors.append("closed")

        t = threading.Thread(target=consumer)
        t.start()
        ring.close()
        t.join(timeout=5.0)
        assert errors == ["closed"]

    def test_close_releases_blocked_writer(self):
        ring = ShmRing(8)
        ring.write(b"12345678")
        errors = []

        def producer():
            try:
                ring.write(b"more", timeout=5.0)
            except ChannelClosedError:
                errors.append("closed")

        t = threading.Thread(target=producer)
        t.start()
        ring.close()
        t.join(timeout=5.0)
        assert errors == ["closed"]


class TestStress:
    @given(st.lists(st.binary(min_size=1, max_size=200), min_size=1,
                    max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_producer_consumer_byte_stream(self, messages):
        """Any message sequence through a small ring arrives intact."""
        ring = ShmRing(64)
        total = b"".join(messages)
        result = []

        def consumer():
            result.append(ring.read(len(total), timeout=10.0))

        t = threading.Thread(target=consumer)
        t.start()
        for msg in messages:
            ring.write(msg, timeout=10.0)
        t.join(timeout=10.0)
        assert result == [total]
