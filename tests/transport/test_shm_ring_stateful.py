"""Model-based test of the SPSC byte ring against a reference deque.

Hypothesis drives an arbitrary interleaving of bounded writes and reads
(sized to stay under capacity so no operation blocks) and checks the
ring byte-for-byte against a plain FIFO model — the strongest kind of
correctness evidence for the wrap-around arithmetic.
"""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.transport.shm import ShmRing

CAPACITY = 64


class RingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ring = ShmRing(CAPACITY)
        self.model = deque()

    @property
    def model_size(self):
        return len(self.model)

    @precondition(lambda self: self.model_size < CAPACITY)
    @rule(data=st.binary(min_size=1, max_size=16))
    def write(self, data):
        data = data[: CAPACITY - self.model_size]
        if not data:
            return
        self.ring.write(data, timeout=1.0)
        self.model.extend(data)

    @precondition(lambda self: self.model_size > 0)
    @rule(n=st.integers(1, 16))
    def read(self, n):
        n = min(n, self.model_size)
        got = self.ring.read(n, timeout=1.0)
        expected = bytes(self.model.popleft() for _ in range(n))
        assert got == expected

    @invariant()
    def sizes_agree(self):
        assert self.ring.size == self.model_size


TestRingModel = RingMachine.TestCase
TestRingModel.settings = settings(max_examples=40,
                                  stateful_step_count=60,
                                  deadline=None)
