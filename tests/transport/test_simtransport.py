"""Tests for the simulator-backed transport."""

import pytest

from repro.exceptions import ChannelClosedError, TransportError
from repro.simnet.presets import paper_testbed, two_machine_lan
from repro.simnet.simulator import NetworkSimulator
from repro.transport.simtransport import SimTransport


@pytest.fixture
def world():
    sim = NetworkSimulator(two_machine_lan())
    ta = SimTransport(sim, "A")
    tb = SimTransport(sim, "B")
    return sim, ta, tb


class TestConnect:
    def test_connect_and_accept(self, world):
        sim, ta, tb = world
        listener = tb.listen()
        client = ta.connect(listener.address)
        server = listener.accept()
        assert not client.closed and not server.closed

    def test_connect_charges_handshake(self, world):
        sim, ta, tb = world
        listener = tb.listen()
        assert sim.clock.now() == 0.0
        ta.connect(listener.address)
        assert sim.clock.now() > 0.0

    def test_unknown_listener(self, world):
        _, ta, _ = world
        with pytest.raises(TransportError):
            ta.connect({"key": "ghost"})

    def test_accept_without_connection(self, world):
        _, _, tb = world
        listener = tb.listen()
        with pytest.raises(TransportError):
            listener.accept()

    def test_listeners_shared_across_transports(self, world):
        """A listener opened on B is reachable from A's transport — the
        key space lives on the simulator."""
        sim, ta, tb = world
        listener = tb.listen({"key": "svc"})
        assert ta.connect({"key": "svc"}) is not None
        listener.close()

    def test_duplicate_key_rejected(self, world):
        _, _, tb = world
        tb.listen({"key": "dup"})
        with pytest.raises(TransportError):
            tb.listen({"key": "dup"})

    def test_machine_by_name(self):
        sim = NetworkSimulator(two_machine_lan())
        t = SimTransport(sim, "A")
        assert t.machine.name == "A"


class TestExchange:
    def test_send_lands_in_inbox(self, world):
        sim, ta, tb = world
        listener = tb.listen()
        client = ta.connect(listener.address)
        server = listener.accept()
        client.send(b"hello")
        assert server.recv() == b"hello"

    def test_send_charges_route_time(self, world):
        sim, ta, tb = world
        listener = tb.listen()
        client = ta.connect(listener.address)
        listener.accept()
        before = sim.clock.now()
        client.send(b"x" * 100_000)
        elapsed = sim.clock.now() - before
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        assert elapsed == pytest.approx(
            sim.transfer_duration(a, b, 100_000))

    def test_on_message_dispatches_inline(self, world):
        sim, ta, tb = world
        listener = tb.listen()
        client = ta.connect(listener.address)
        server = listener.accept()
        server.on_message = lambda data, ch: ch.send(data.upper())
        client.send(b"ping")
        assert client.recv() == b"PING"

    def test_reply_charges_return_path(self, world):
        sim, ta, tb = world
        listener = tb.listen()
        client = ta.connect(listener.address)
        server = listener.accept()
        server.on_message = lambda data, ch: ch.send(data)
        t0 = sim.clock.now()
        client.send(b"y" * 50_000)
        client.recv()
        a = sim.topology.machine("A")
        b = sim.topology.machine("B")
        expected = 2 * sim.transfer_duration(a, b, 50_000)
        assert sim.clock.now() - t0 == pytest.approx(expected)

    def test_recv_empty_raises(self, world):
        _, ta, tb = world
        listener = tb.listen()
        client = ta.connect(listener.address)
        with pytest.raises(TransportError):
            client.recv()

    def test_send_to_closed_peer(self, world):
        _, ta, tb = world
        listener = tb.listen()
        client = ta.connect(listener.address)
        server = listener.accept()
        server.close()
        with pytest.raises(ChannelClosedError):
            client.send(b"x")

    def test_on_connect_callback(self, world):
        sim, ta, tb = world
        listener = tb.listen()
        got = []
        listener.on_connect = got.append
        ta.connect(listener.address)
        assert len(got) == 1
        assert got[0].machine.name == "B"


class TestPaperTopology:
    def test_remote_costs_more_than_local(self):
        tb = paper_testbed()
        sim = NetworkSimulator(tb.topology)
        t_m0 = SimTransport(sim, tb.m0)
        t_m1 = SimTransport(sim, tb.m1)
        t_m3 = SimTransport(sim, tb.m3)

        lst_remote = t_m1.listen()
        lst_near = t_m3.listen()
        c_remote = t_m0.connect(lst_remote.address)
        c_near = t_m0.connect(lst_near.address)
        lst_remote.accept()
        lst_near.accept()

        t0 = sim.clock.now()
        c_remote.send(b"z" * 10_000)
        remote_cost = sim.clock.now() - t0
        t0 = sim.clock.now()
        c_near.send(b"z" * 10_000)
        near_cost = sim.clock.now() - t0
        assert remote_cost > near_cost
