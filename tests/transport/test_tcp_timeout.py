"""TcpChannel recv-timeout semantics: idle timeouts are harmless,
mid-frame timeouts poison the stream and must close the channel."""

import socket

import pytest

from repro.exceptions import ChannelClosedError, TransportError
from repro.transport.framing import write_frame
from repro.transport.tcp import TcpChannel


@pytest.fixture
def raw_pair():
    """(TcpChannel client, raw server socket) so tests can dribble
    bytes that no framed sender would produce."""
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    client_sock = socket.create_connection(srv.getsockname())
    conn, _addr = srv.accept()
    channel = TcpChannel(client_sock)
    yield channel, conn
    channel.close()
    conn.close()
    srv.close()


def frame_bytes(payload: bytes) -> bytes:
    buf = bytearray()
    write_frame(buf.extend, payload)
    return bytes(buf)


class TestIdleTimeout:
    def test_channel_survives(self, raw_pair):
        channel, conn = raw_pair
        with pytest.raises(TransportError):
            channel.recv(timeout=0.1)
        assert not channel.closed           # clean frame boundary

    def test_later_frame_delivered_intact(self, raw_pair):
        """An endpoint polling an idle channel with short timeouts must
        keep working once traffic arrives."""
        channel, conn = raw_pair
        for _ in range(3):
            with pytest.raises(TransportError):
                channel.recv(timeout=0.05)
        conn.sendall(frame_bytes(b"hello"))
        assert channel.recv(timeout=1.0) == b"hello"


class TestMidFrameTimeout:
    def test_channel_closed(self, raw_pair):
        channel, conn = raw_pair
        partial = frame_bytes(b"hello world")[:-4]   # withhold the tail
        conn.sendall(partial)
        with pytest.raises(TransportError) as err:
            channel.recv(timeout=0.2)
        assert "mid-frame" in str(err.value)
        assert channel.closed

    def test_no_corrupt_next_frame(self, raw_pair):
        """The poisoned stream must never deliver a spliced frame."""
        channel, conn = raw_pair
        conn.sendall(frame_bytes(b"first")[:-2])
        with pytest.raises(TransportError):
            channel.recv(timeout=0.2)
        conn.sendall(frame_bytes(b"first")[-2:] + frame_bytes(b"second"))
        with pytest.raises(ChannelClosedError):
            channel.recv(timeout=0.5)

    def test_partial_header_also_poisons(self, raw_pair):
        """Even a few header bytes leave the position unknown."""
        channel, conn = raw_pair
        conn.sendall(frame_bytes(b"x")[:3])
        with pytest.raises(TransportError) as err:
            channel.recv(timeout=0.2)
        assert "mid-frame" in str(err.value)
        assert channel.closed
