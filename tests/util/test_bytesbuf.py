"""Tests for the zero-copy byte buffer and reader."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import BufferUnderflowError
from repro.util.bytesbuf import ZERO_COPY_THRESHOLD, ByteBuffer, ByteReader


class TestByteBuffer:
    def test_empty(self):
        buf = ByteBuffer()
        assert len(buf) == 0
        assert buf.getvalue() == b""
        assert buf.chunks() == []

    def test_initial_data(self):
        buf = ByteBuffer(b"abc")
        assert buf.getvalue() == b"abc"

    def test_write_returns_self(self):
        buf = ByteBuffer()
        assert buf.write(b"a") is buf

    def test_small_writes_coalesce(self):
        buf = ByteBuffer()
        for _ in range(10):
            buf.write(b"ab")
        chunks = buf.chunks()
        assert chunks == [b"ab" * 10]
        assert len(buf) == 20

    def test_large_chunk_kept_by_reference(self):
        big = b"x" * (ZERO_COPY_THRESHOLD + 1)
        buf = ByteBuffer()
        buf.write(b"hdr")
        buf.write(big)
        chunks = buf.chunks()
        assert chunks[0] == b"hdr"
        assert chunks[1] is big  # identity: no copy was made

    def test_large_bytearray_is_frozen(self):
        # A mutable input must be snapshotted, otherwise later mutation
        # by the caller would corrupt the already-queued message.
        big = bytearray(b"y" * (ZERO_COPY_THRESHOLD + 5))
        buf = ByteBuffer()
        buf.write(big)
        big[0] = ord(b"z")
        assert buf.getvalue()[0] == ord(b"y")

    def test_large_writable_memoryview_made_readonly(self):
        backing = bytearray(b"m" * (ZERO_COPY_THRESHOLD + 2))
        buf = ByteBuffer()
        buf.write(memoryview(backing))
        chunk = buf.chunks()[0]
        assert isinstance(chunk, memoryview) and chunk.readonly

    def test_zero_length_write_is_noop(self):
        buf = ByteBuffer()
        buf.write(b"")
        assert len(buf) == 0 and buf.chunks() == []

    def test_write_many(self):
        buf = ByteBuffer()
        buf.write_many([b"a", b"b", b"c"])
        assert buf.getvalue() == b"abc"

    def test_interleaved_small_and_large(self):
        big = b"L" * ZERO_COPY_THRESHOLD
        buf = ByteBuffer()
        buf.write(b"s1").write(big).write(b"s2")
        assert buf.getvalue() == b"s1" + big + b"s2"
        assert len(buf) == 4 + len(big)

    def test_clear(self):
        buf = ByteBuffer(b"abc")
        buf.clear()
        assert len(buf) == 0
        assert buf.getvalue() == b""

    def test_getvalue_idempotent(self):
        buf = ByteBuffer()
        buf.write(b"abc").write(b"def")
        assert buf.getvalue() == buf.getvalue() == b"abcdef"

    @given(st.lists(st.binary(max_size=2000), max_size=20))
    def test_roundtrip_matches_join(self, parts):
        buf = ByteBuffer()
        for p in parts:
            buf.write(p)
        assert buf.getvalue() == b"".join(parts)
        assert len(buf) == sum(len(p) for p in parts)


class TestByteReader:
    def test_sequential_reads(self):
        r = ByteReader(b"hello world")
        assert bytes(r.read(5)) == b"hello"
        assert bytes(r.read(1)) == b" "
        assert bytes(r.rest()) == b"world"
        assert r.remaining == 0

    def test_read_returns_memoryview(self):
        r = ByteReader(b"abcdef")
        view = r.read(3)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"abc"

    def test_read_is_zero_copy(self):
        data = bytearray(b"abcdef")
        r = ByteReader(data)
        view = r.read(3)
        data[0] = ord(b"z")
        assert bytes(view) == b"zbc"  # aliases the source

    def test_underflow_raises(self):
        r = ByteReader(b"ab")
        with pytest.raises(BufferUnderflowError):
            r.read(3)

    def test_underflow_does_not_advance(self):
        r = ByteReader(b"ab")
        with pytest.raises(BufferUnderflowError):
            r.read(5)
        assert bytes(r.read(2)) == b"ab"

    def test_negative_read_rejected(self):
        r = ByteReader(b"ab")
        with pytest.raises(ValueError):
            r.read(-1)

    def test_peek_does_not_advance(self):
        r = ByteReader(b"abcd")
        assert bytes(r.peek(2)) == b"ab"
        assert bytes(r.read(2)) == b"ab"

    def test_peek_underflow(self):
        r = ByteReader(b"a")
        with pytest.raises(BufferUnderflowError):
            r.peek(2)

    def test_skip(self):
        r = ByteReader(b"abcd")
        r.skip(2)
        assert bytes(r.rest()) == b"cd"

    def test_seek(self):
        r = ByteReader(b"abcd")
        r.read(3)
        r.seek(1)
        assert bytes(r.rest()) == b"bcd"

    def test_seek_out_of_range(self):
        r = ByteReader(b"abcd")
        with pytest.raises(BufferUnderflowError):
            r.seek(5)

    def test_read_bytes_owns_copy(self):
        data = bytearray(b"abc")
        r = ByteReader(data)
        owned = r.read_bytes(3)
        data[0] = ord(b"z")
        assert owned == b"abc"

    @given(st.binary(max_size=500), st.integers(0, 500))
    def test_read_then_rest_partition(self, data, n):
        r = ByteReader(data)
        if n > len(data):
            with pytest.raises(BufferUnderflowError):
                r.read(n)
        else:
            head = bytes(r.read(n))
            tail = bytes(r.rest())
            assert head + tail == data
