"""Tests for the from-scratch checksum implementations.

CRC-32 and Adler-32 are checked against the zlib reference implementations
— our versions must match those bit-for-bit since they implement the same
published algorithms.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.checksums import adler32, crc32, fletcher16


class TestCrc32:
    def test_empty(self):
        assert crc32(b"") == zlib.crc32(b"")

    def test_known_vector(self):
        # The classic check value for CRC-32/ISO-HDLC.
        assert crc32(b"123456789") == 0xCBF43926

    def test_matches_zlib(self):
        for data in (b"a", b"abc", b"hello world", bytes(range(256))):
            assert crc32(data) == zlib.crc32(data)

    def test_incremental(self):
        whole = crc32(b"foobar")
        part = crc32(b"bar", crc32(b"foo"))
        assert part == whole

    @given(st.binary(max_size=300))
    def test_matches_zlib_property(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=100), st.binary(max_size=100))
    def test_incremental_property(self, a, b):
        assert crc32(b, crc32(a)) == crc32(a + b)


class TestAdler32:
    def test_empty(self):
        assert adler32(b"") == zlib.adler32(b"")

    def test_known(self):
        assert adler32(b"Wikipedia") == 0x11E60398

    def test_matches_zlib_large(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=200_000, dtype=np.uint8).tobytes()
        assert adler32(data) == zlib.adler32(data)

    def test_incremental(self):
        assert adler32(b"bar", adler32(b"foo")) == adler32(b"foobar")

    @given(st.binary(max_size=20_000))
    def test_matches_zlib_property(self, data):
        assert adler32(data) == zlib.adler32(data)

    @given(st.binary(max_size=6000), st.binary(max_size=6000))
    def test_incremental_property(self, a, b):
        # Crossing the NMAX block boundary must not change the result.
        assert adler32(b, adler32(a)) == adler32(a + b)


class TestFletcher16:
    def test_empty(self):
        assert fletcher16(b"") == 0

    def test_known_vectors(self):
        # Standard test vectors for Fletcher-16.
        assert fletcher16(b"abcde") == 0xC8F0
        assert fletcher16(b"abcdef") == 0x2057
        assert fletcher16(b"abcdefgh") == 0x0627

    def test_detects_single_bit_flip(self):
        data = bytearray(b"the quick brown fox")
        before = fletcher16(data)
        data[3] ^= 0x01
        assert fletcher16(data) != before

    def test_blockwise_equals_serial(self):
        # Reference serial implementation.
        def serial(data):
            a = b = 0
            for byte in data:
                a = (a + byte) % 255
                b = (b + a) % 255
            return (b << 8) | a

        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes()
        assert fletcher16(data) == serial(data)

    @given(st.binary(max_size=5000))
    def test_range(self, data):
        value = fletcher16(data)
        assert 0 <= value <= 0xFFFF
