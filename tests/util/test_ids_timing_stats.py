"""Tests for id generation, time sources, and online statistics."""

import math
import statistics
import threading

import pytest
from hypothesis import given, strategies as st

from repro.util.ids import IdGenerator, fresh_uid
from repro.util.stats import EwmAverage, OnlineStats, percentile
from repro.util.timing import Stopwatch, WallClock


class TestIdGenerator:
    def test_prefix_and_monotonic(self):
        gen = IdGenerator("ctx")
        assert gen.next_id() == "ctx-0"
        assert gen.next_id() == "ctx-1"
        assert gen.next_int() == 2

    def test_start_offset(self):
        gen = IdGenerator("obj", start=10)
        assert gen.next_id() == "obj-10"

    def test_thread_safety(self):
        gen = IdGenerator("t")
        seen = []

        def worker():
            for _ in range(500):
                seen.append(gen.next_int())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 4000

    def test_fresh_uid_unique(self):
        uids = {fresh_uid() for _ in range(100)}
        assert len(uids) == 100


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first >= 0.0

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0 and not sw.running

    def test_custom_time_source(self):
        class FakeClock:
            t = 0.0

            def now(self):
                return self.t

        clock = FakeClock()
        sw = Stopwatch(clock)
        sw.start()
        clock.t = 2.5
        assert sw.stop() == pytest.approx(2.5)

    def test_wallclock_monotone(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_single(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0 and s.min == 5.0 and s.max == 5.0
        assert s.stddev == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_matches_statistics_module(self, xs):
        s = OnlineStats()
        s.extend(xs)
        assert s.mean == pytest.approx(statistics.fmean(xs), rel=1e-9,
                                       abs=1e-6)
        assert s.variance == pytest.approx(statistics.variance(xs), rel=1e-6,
                                           abs=1e-6)
        assert s.min == min(xs) and s.max == max(xs)


class TestEwmAverage:
    def test_first_sample_initializes(self):
        ewm = EwmAverage(alpha=0.5)
        assert ewm.add(10.0) == 10.0

    def test_converges_to_constant(self):
        ewm = EwmAverage(alpha=0.5)
        for _ in range(50):
            ewm.add(3.0)
        assert ewm.value == pytest.approx(3.0)

    def test_explicit_initial(self):
        ewm = EwmAverage(alpha=0.5, initial=0.0)
        assert ewm.add(10.0) == pytest.approx(5.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmAverage(alpha=0.0)
        with pytest.raises(ValueError):
            EwmAverage(alpha=1.5)

    def test_smoothing_bounds(self):
        ewm = EwmAverage(alpha=0.2, initial=0.0)
        ewm.add(100.0)
        assert 0.0 < ewm.value < 100.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        xs = list(range(11))
        assert percentile(xs, 0) == 0.0
        assert percentile(xs, 100) == 10.0

    def test_singleton(self):
        assert percentile([7], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
